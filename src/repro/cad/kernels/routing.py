"""Array-native cost kernels for the PathFinder router.

The pure-python router computes the congestion/timing cost of a node and
its A* lower bound from scratch for every edge it relaxes.  The numpy
backend amortizes the work around that inner loop:

* the full per-node congestion cost vector is recomputed **vectorized**
  once per PathFinder iteration (and patched per routed net as tree
  occupancies change), so the relaxation reduces to one list lookup per
  edge;
* the admissible A* lower bound is evaluated for **all** nodes at once
  per sink set (one Manhattan-distance reduction over the graph's
  flattened coordinate arrays) and cached — sink sets repeat on every
  re-route of the same net;
* each pruning box gets a **filtered CSR** adjacency (out-of-box wire
  edges dropped up front, vectorized), so the inner loop never tests the
  box at all.

Geometry-only caches (bounds, adjacency) live on the graph's kernel-array
attachment and are shared across route calls on the same graph.

Bit-identity with the python reference is load-bearing: every vectorized
expression mirrors the reference's per-element IEEE-754 operation order
(`base * (1 + pres_fac * over) + hist_fac * history`, then the
`crit * delay + (1 - crit) * congestion` blend), so distances, heap pops
and routed trees match the pure-python kernel exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cad.kernels.arrays import graph_arrays

#: Geometry caches are shared per graph and keyed by box / sink set; long
#: sweep campaigns route many designs over one cached graph, so bound the
#: growth (a full clear is simpler than LRU bookkeeping and just as safe —
#: entries are pure functions of the key).
_GEOMETRY_CACHE_LIMIT = 512


class RouterCostTable:
    """Precomputed per-node router costs, kept in lockstep with occupancy.

    The table holds live references to the router's ``occupancy`` and
    ``history`` lists.  :meth:`refresh` rebuilds the full congestion
    vector (once per PathFinder iteration, when ``pres_fac``/``history``
    move); :meth:`update` patches the entries of the nodes a single
    occupy/release touched.  :meth:`group_view` snapshots the cost state
    for one parallel net group so concurrent groups never observe each
    other's patches.
    """

    def __init__(
        self,
        graph,
        occupancy: List[int],
        history: List[float],
        hist_fac: float,
        delay_cost: Optional[Sequence[float]],
    ) -> None:
        import numpy as np

        self._np = np
        arrays = graph_arrays(graph)
        self._arrays = arrays
        self.base = arrays["base_cost"]
        self.capacity = arrays["capacity"]
        self.x = arrays["x"]
        self.y = arrays["y"]
        self._is_wire = arrays["is_wire"]
        self._is_wire_list = graph.is_wire
        self._base_list = graph.base_cost
        self._capacity_list = graph.capacity
        self._edge_starts = graph.edge_starts
        self._edge_targets = graph.edge_targets
        self._occupancy = occupancy
        self._history = history
        self.hist_fac = hist_fac
        self.delay = np.asarray(delay_cost, dtype=np.float64) if delay_cost else None
        self.pres_fac = 0.0
        self.cong = None
        self.cong_list: List[float] = []
        self.zeros: List[float] = [0.0] * len(graph)
        self._blend_cache: Dict[float, List[float]] = {}
        # Geometry-only caches shared across tables on the same graph.
        self._adjacency_cache = arrays.setdefault("adjacency", {})
        self._sink_dist = arrays.setdefault("sink_dist", {})
        self._lb_cache = arrays.setdefault("lower_bounds", {})

    # ------------------------------------------------------------------
    # Congestion-cost maintenance
    # ------------------------------------------------------------------
    def refresh(self, pres_fac: float) -> None:
        """Vectorized full recompute (start of every PathFinder iteration).

        Pin entries are pinned to ``+inf``: a pin belongs to exactly one
        net, so the reference search skips every *foreign* pin — with an
        infinite cost the relaxation fails numerically instead, letting
        the inner loop drop the pin test entirely.  A net's own pins get
        their true cost patched in per search.
        """
        np = self._np
        occ = np.asarray(self._occupancy, dtype=np.int64)
        hist = np.asarray(self._history, dtype=np.float64)
        over = occ + 1 - self.capacity
        cong = np.where(over > 0, self.base * (1.0 + pres_fac * over), self.base)
        cong = cong + self.hist_fac * hist
        cong[~self._is_wire] = np.inf
        self.pres_fac = pres_fac
        self.cong = cong
        self.cong_list = cong.tolist()
        self._blend_cache = {}

    def update(self, nodes: Sequence[int]) -> None:
        """Patch the entries a single tree occupy/release changed."""
        occupancy = self._occupancy
        history = self._history
        base = self._base_list
        capacity = self._capacity_list
        is_wire = self._is_wire_list
        pres_fac = self.pres_fac
        hist_fac = self.hist_fac
        cong = self.cong
        cong_list = self.cong_list
        for node_id in nodes:
            if not is_wire[node_id]:
                continue  # pins stay at +inf (see refresh)
            over = occupancy[node_id] + 1 - capacity[node_id]
            step = base[node_id]
            if over > 0:
                step *= 1.0 + pres_fac * over
            step += hist_fac * history[node_id]
            cong_list[node_id] = step
            cong[node_id] = step
        if self._blend_cache:
            self._blend_cache = {}

    def cost_list(self, crit: float) -> List[float]:
        """The per-node step-cost list for one net's criticality."""
        if crit == 0.0 or self.delay is None:
            # crit == 0 blends to exactly the congestion cost
            # (0.0 * delay + 1.0 * step == step for finite positive values).
            return self.cong_list
        cached = self._blend_cache.get(crit)
        if cached is None:
            blended = crit * self.delay + (1.0 - crit) * self.cong
            cached = blended.tolist()
            self._blend_cache[crit] = cached
        return cached

    def group_view(self, occupancy: List[int]) -> "GroupCostView":
        """A snapshot view over a group-private occupancy list."""
        return GroupCostView(self, occupancy)

    # ------------------------------------------------------------------
    # Geometry (static per graph; caches shared and idempotent, so the
    # benign insert races between parallel net groups are harmless)
    # ------------------------------------------------------------------
    def adjacency(self, box: Optional[Tuple[int, int, int, int]]) -> List[List[int]]:
        """Per-node neighbour lists with out-of-box wire targets pruned.

        Materialized as lists (not CSR) so the search's pop loop iterates
        a node's neighbours without building a slice each time.
        """
        cached = self._adjacency_cache.get(box)
        if cached is None:
            np = self._np
            if len(self._adjacency_cache) >= _GEOMETRY_CACHE_LIMIT:
                self._adjacency_cache.clear()
            starts = self._edge_starts
            if box is None:
                targets = self._edge_targets
            else:
                x0, x1, y0, y1 = box
                inside = (
                    (self.x >= x0) & (self.x <= x1) & (self.y >= y0) & (self.y <= y1)
                )
                allowed = inside | ~self._is_wire  # pins are cost-gated instead
                starts_arr = np.asarray(starts, dtype=np.int64)
                targets_arr = np.asarray(self._edge_targets, dtype=np.int64)
                keep = allowed[targets_arr]
                csum = np.concatenate(([0], np.cumsum(keep)))
                starts = csum[starts_arr].tolist()
                targets = targets_arr[keep].tolist()
            cached = [
                targets[starts[node_id] : starts[node_id + 1]]
                for node_id in range(len(starts) - 1)
            ]
            self._adjacency_cache[box] = cached
        return cached

    def lower_bounds(self, remaining: Set[int], half_fac: float) -> List[float]:
        """A* lower bound for every node towards the nearest remaining sink.

        One hop shrinks the Manhattan distance by at most 2, so
        ``half_fac`` (half the cheapest per-node cost) times the integer
        Manhattan distance never over-estimates — and the single float
        multiply on an exact integer reduction reproduces the reference
        bound bit-for-bit.  Keyed by (sink set, half_fac): the same sink
        sets recur on every PathFinder re-route of a net.
        """
        key = (tuple(sorted(remaining)), half_fac)
        cached = self._lb_cache.get(key)
        if cached is None:
            np = self._np
            if len(self._lb_cache) >= _GEOMETRY_CACHE_LIMIT:
                self._lb_cache.clear()
            nearest = None
            for sink in key[0]:
                dist = self._sink_dist.get(sink)
                if dist is None:
                    if len(self._sink_dist) >= _GEOMETRY_CACHE_LIMIT:
                        self._sink_dist.clear()
                    dist = np.abs(self.x - int(self.x[sink])) + np.abs(
                        self.y - int(self.y[sink])
                    )
                    self._sink_dist[sink] = dist
                nearest = dist if nearest is None else np.minimum(nearest, dist)
            cached = (half_fac * nearest).tolist()
            self._lb_cache[key] = cached
        return cached


class GroupCostView:
    """Group-private cost state for one parallel routing group.

    Copies the congestion vector at group start (phase 1 routes against
    the iteration-start snapshot) and applies the group's own
    release/occupy patches against the group's private occupancy list;
    geometry lookups delegate to the shared table.
    """

    def __init__(self, table: RouterCostTable, occupancy: List[int]) -> None:
        self._np = table._np
        self._table = table
        self._occupancy = occupancy
        self._history = table._history
        self._base_list = table._base_list
        self._capacity_list = table._capacity_list
        self._is_wire_list = table._is_wire_list
        self.pres_fac = table.pres_fac
        self.hist_fac = table.hist_fac
        self.delay = table.delay
        self.cong = table.cong.copy()
        self.cong_list = table.cong_list[:]
        self.zeros = table.zeros
        self._blend_cache: Dict[float, List[float]] = {}

    update = RouterCostTable.update
    cost_list = RouterCostTable.cost_list

    def adjacency(self, box):
        return self._table.adjacency(box)

    def lower_bounds(self, remaining, half_fac):
        return self._table.lower_bounds(remaining, half_fac)
