"""Routing: a negotiated-congestion (PathFinder) router.

Each logical net connecting placed blocks is routed as a tree over the
routing-resource graph (:mod:`repro.core.rrgraph`): Dijkstra searches grow the
tree towards every sink, and the classic PathFinder cost update (present +
historical congestion) resolves overuse across iterations.

The router is **incremental**: the first iteration routes every net, but
later iterations rip up and re-route only *dirty* nets — nets whose routed
trees touch an overused node — escalating to full-recovery sweeps when the
negotiation stalls (see ``route_design``).  The overused-node set itself is
maintained incrementally as occupancies change (no full-graph scan per
iteration), and the hot Dijkstra loop indexes the graph's flattened parallel
arrays (``base_cost`` / ``capacity`` / CSR edges) instead of calling
``graph.node()`` per edge relaxation.  ``route_design(..., incremental=
False)`` restores the classic re-route-everything schedule; the parity tests
hold the incremental mode to equal-or-better success and channel width on
every registry circuit (it routes the paper's decomposed 2x2 multiplier at
the default channel width 8, where full re-routing needs 10).

Before routing, logical PLB pins are assigned to physical pins: every external
input net of a packed PLB gets one of the PLB's ``in*`` pins and every
externally consumed output one of the ``out*`` pins, in deterministic order.
Primary inputs/outputs use the IO pads chosen by the placer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.cad.lemap import MappedDesign
from repro.cad.place import Placement
from repro.core.fabric import Fabric
from repro.core.rrgraph import RoutingResourceGraph


class RoutingError(RuntimeError):
    """Raised when the router cannot complete (unroutable or pin overflow)."""


@dataclass
class PinAssignment:
    """Physical pin chosen for one logical net at one placed block."""

    net: str
    block: str
    pin: str
    node_id: int
    is_driver: bool


@dataclass
class RoutedNet:
    """The routed tree of one net."""

    net: str
    source_node: int
    sink_nodes: list[int]
    nodes: list[int] = field(default_factory=list)

    @property
    def wirelength(self) -> int:
        return len(self.nodes)


@dataclass
class RoutingResult:
    """Everything the router produced.

    ``reroutes_per_iteration[i]`` is how many nets iteration ``i + 1``
    ripped up and re-routed; with incremental routing the tail entries are
    typically a small fraction of the net count (only nets touching overused
    nodes), which is the router's headline perf counter.
    """

    routed: dict[str, RoutedNet] = field(default_factory=dict)
    pin_assignments: list[PinAssignment] = field(default_factory=list)
    iterations: int = 0
    success: bool = False
    overused_nodes: int = 0
    reroutes_per_iteration: list[int] = field(default_factory=list)

    @property
    def total_wirelength(self) -> int:
        return sum(net.wirelength for net in self.routed.values())

    @property
    def total_reroutes(self) -> int:
        """Net-route operations summed over all iterations."""
        return sum(self.reroutes_per_iteration)

    def channel_occupancy(self, graph: RoutingResourceGraph) -> dict[int, int]:
        """Usage count per wire node (diagnostics / fabric-exploration bench)."""
        is_wire = graph.is_wire
        usage: dict[int, int] = {}
        for routed in self.routed.values():
            for node_id in routed.nodes:
                if is_wire[node_id]:
                    usage[node_id] = usage.get(node_id, 0) + 1
        return usage


def _collect_net_endpoints(
    design: MappedDesign,
    placement: Placement,
    graph: RoutingResourceGraph,
) -> tuple[dict[str, int], dict[str, list[int]], list[PinAssignment]]:
    """Compute, for every net that leaves a block, its source node and sink nodes."""
    fabric = graph.fabric
    assignments: list[PinAssignment] = []

    driver_plb: dict[str, str] = {}
    for plb in design.plbs:
        for net in plb.output_nets:
            driver_plb[net] = plb.name

    consumers: dict[str, list[str]] = {}
    for plb in design.plbs:
        for net in plb.external_input_nets:
            consumers.setdefault(net, []).append(plb.name)

    sources: dict[str, int] = {}
    sinks: dict[str, list[int]] = {}

    # Per-PLB physical pin allocation.
    input_pin_cursor: dict[str, int] = {plb.name: 0 for plb in design.plbs}
    output_pin_cursor: dict[str, int] = {plb.name: 0 for plb in design.plbs}
    input_pins = fabric.plb_input_pins()
    output_pins = fabric.plb_output_pins()

    def next_input_pin(plb_name: str) -> str:
        cursor = input_pin_cursor[plb_name]
        if cursor >= len(input_pins):
            raise RoutingError(f"PLB {plb_name} needs more than {len(input_pins)} input pins")
        input_pin_cursor[plb_name] = cursor + 1
        return input_pins[cursor]

    def next_output_pin(plb_name: str) -> str:
        cursor = output_pin_cursor[plb_name]
        if cursor >= len(output_pins):
            raise RoutingError(f"PLB {plb_name} needs more than {len(output_pins)} output pins")
        output_pin_cursor[plb_name] = cursor + 1
        return output_pins[cursor]

    interesting_nets: list[str] = []
    for net in sorted(set(list(consumers) + design.primary_outputs)):
        driven_by_plb = net in driver_plb
        consumed_by_plbs = [
            name for name in consumers.get(net, []) if name != driver_plb.get(net)
        ]
        is_primary_output = net in design.primary_outputs
        is_primary_input = net in design.primary_inputs
        needs_routing = (
            (driven_by_plb and (consumed_by_plbs or is_primary_output))
            or (is_primary_input and consumers.get(net))
        )
        if needs_routing:
            interesting_nets.append(net)

    for net in interesting_nets:
        # Source.
        if net in driver_plb:
            plb_name = driver_plb[net]
            x, y = placement.site_of(plb_name)
            pin = next_output_pin(plb_name)
            node = graph.opin(x, y, pin)
            assignments.append(PinAssignment(net, plb_name, pin, node.node_id, True))
        elif net in design.primary_inputs:
            pad = placement.pad_of(net)
            node = graph.io_opin(pad)
            assignments.append(PinAssignment(net, pad.name, "out", node.node_id, True))
        else:
            continue
        sources[net] = node.node_id

        # Sinks.
        net_sinks: list[int] = []
        for plb_name in consumers.get(net, []):
            if net in driver_plb and plb_name == driver_plb[net]:
                continue  # internal to the PLB, no routing needed
            x, y = placement.site_of(plb_name)
            pin = next_input_pin(plb_name)
            sink = graph.ipin(x, y, pin)
            assignments.append(PinAssignment(net, plb_name, pin, sink.node_id, False))
            net_sinks.append(sink.node_id)
        if net in design.primary_outputs and net in driver_plb:
            pad = placement.pad_of(net)
            sink = graph.io_ipin(pad)
            assignments.append(PinAssignment(net, pad.name, "in", sink.node_id, False))
            net_sinks.append(sink.node_id)
        if net_sinks:
            sinks[net] = net_sinks
        else:
            sources.pop(net, None)

    return sources, sinks, assignments


def route_design(
    design: MappedDesign,
    placement: Placement,
    graph: RoutingResourceGraph,
    max_iterations: int = 30,
    pres_fac_initial: float = 0.5,
    pres_fac_mult: float = 1.6,
    hist_fac: float = 0.4,
    incremental: bool = True,
) -> RoutingResult:
    """PathFinder routing of all inter-block nets of a placed design.

    With ``incremental=True`` (the default) only dirty nets — nets whose
    routed trees touch an overused node — are ripped up and re-routed after
    the first iteration; ``incremental=False`` re-routes every net each
    iteration (the classic schedule, kept as the parity/quality reference).
    """
    sources, sinks, assignments = _collect_net_endpoints(design, placement, graph)

    result = RoutingResult(pin_assignments=assignments)
    if not sources:
        result.success = True
        return result

    node_count = len(graph)
    occupancy = [0] * node_count
    history = [0.0] * node_count
    base_cost = graph.base_cost
    capacity = graph.capacity
    is_wire = graph.is_wire
    edge_starts = graph.edge_starts
    edge_targets = graph.edge_targets
    routes: dict[str, RoutedNet] = {}

    # The overused-node set is maintained incrementally as tree occupancies
    # change, so no iteration ever scans all graph nodes for congestion.
    overused: set[int] = set()

    def occupy(nodes: list[int]) -> None:
        for node_id in nodes:
            occupancy[node_id] += 1
            if occupancy[node_id] > capacity[node_id]:
                overused.add(node_id)

    def release(nodes: list[int]) -> None:
        for node_id in nodes:
            occupancy[node_id] -= 1
            if occupancy[node_id] <= capacity[node_id]:
                overused.discard(node_id)

    # Pin nodes belong to exactly one net by construction, so congestion only
    # develops on wires.
    pres_fac = pres_fac_initial

    def route_net(net: str) -> RoutedNet:
        source = sources[net]
        targets = set(sinks[net])
        tree: set[int] = {source}
        all_nodes: set[int] = {source}
        remaining = set(targets)
        infinity = float("inf")
        while remaining:
            # Dijkstra from the current tree to the nearest remaining sink.
            distances = {node_id: 0.0 for node_id in tree}
            previous: dict[int, int] = {}
            heap = [(0.0, node_id) for node_id in tree]
            heapq.heapify(heap)
            visited: set[int] = set()
            found: int | None = None
            while heap:
                distance, node_id = heapq.heappop(heap)
                if node_id in visited:
                    continue
                visited.add(node_id)
                if node_id in remaining:
                    found = node_id
                    break
                for neighbour in edge_targets[edge_starts[node_id] : edge_starts[node_id + 1]]:
                    if neighbour in visited:
                        continue
                    # Do not route through foreign pins.
                    if not is_wire[neighbour]:
                        if neighbour not in remaining and neighbour != source:
                            continue
                    # Inlined PathFinder node cost: present congestion
                    # (discounting this net's own usage) plus history.
                    usage = occupancy[neighbour]
                    if neighbour in all_nodes:
                        usage -= 1
                    over = usage + 1 - capacity[neighbour]
                    step = base_cost[neighbour]
                    if over > 0:
                        step *= 1.0 + pres_fac * over
                    step += hist_fac * history[neighbour]
                    new_distance = distance + step
                    if new_distance < distances.get(neighbour, infinity):
                        distances[neighbour] = new_distance
                        previous[neighbour] = node_id
                        heapq.heappush(heap, (new_distance, neighbour))
            if found is None:
                raise RoutingError(f"net {net!r} is unroutable (no path to a sink)")
            # Back-trace the path into the tree.
            cursor = found
            while cursor not in tree:
                all_nodes.add(cursor)
                tree.add(cursor)
                cursor = previous[cursor]
            remaining.discard(found)
        return RoutedNet(net=net, source_node=source, sink_nodes=list(targets), nodes=sorted(all_nodes))

    net_order = sorted(sources)
    iteration = 0
    best_overuse: int | None = None
    stalled = 0
    full_recovery = False
    for iteration in range(1, max_iterations + 1):
        if iteration == 1 or not incremental or full_recovery:
            dirty = net_order
        else:
            # Only nets whose trees touch an overused node must move; the
            # rest keep their (legal) routes and their occupancies.
            dirty = [
                net
                for net in net_order
                if any(node_id in overused for node_id in routes[net].nodes)
            ]
        for net in dirty:
            if net in routes:
                release(routes[net].nodes)
            routed = route_net(net)
            routes[net] = routed
            occupy(routed.nodes)
        result.reroutes_per_iteration.append(len(dirty))

        if not overused:
            result.routed = routes
            result.iterations = iteration
            result.success = True
            result.overused_nodes = 0
            return result
        # Dirty-net-only negotiation can livelock: a handful of nets swap
        # one contested node back and forth while every alternative path is
        # held by clean nets that never move (their paths inflate with
        # pres_fac just as fast as the contested node).  When total overuse
        # stops improving, escalate into *full-recovery* mode: restart the
        # present-congestion pressure at its initial value and re-route every
        # net each iteration — history keeps the long-term congestion signal,
        # and the restarted pressure lets the whole net population
        # redistribute the way early iterations do.  Recovery ends at the
        # first improvement, returning to cheap dirty-net iterations.
        # Well-behaved runs (monotonically shrinking overuse) never escalate.
        if incremental:
            total_overuse = sum(
                occupancy[node_id] - capacity[node_id] for node_id in overused
            )
            if best_overuse is None or total_overuse < best_overuse:
                best_overuse = total_overuse
                stalled = 0
                full_recovery = False
            elif not full_recovery:
                stalled += 1
                if stalled >= 3:
                    full_recovery = True
                    stalled = 0
                    pres_fac = pres_fac_initial
        for node_id in overused:
            history[node_id] += occupancy[node_id] - capacity[node_id]
        pres_fac *= pres_fac_mult

    result.routed = routes
    result.iterations = iteration
    result.success = False
    result.overused_nodes = len(overused)
    return result
