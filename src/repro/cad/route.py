"""Routing: a timing-driven negotiated-congestion (PathFinder) router.

Each logical net connecting placed blocks is routed as a tree over the
routing-resource graph (:mod:`repro.core.rrgraph`): A*-accelerated Dijkstra
searches grow the tree towards every sink, and the classic PathFinder cost
update (present + historical congestion) resolves overuse across iterations.

Three cost layers compose in the hot loop:

* **congestion** -- ``base_cost * (1 + pres_fac * overuse) + hist_fac *
  history``, the classic PathFinder node cost;
* **timing** -- with per-net criticalities (from
  :class:`repro.cad.timing.TimingEngine`) the node cost becomes the VPR-style
  blend ``crit * delay + (1 - crit) * congestion``: critical nets chase short
  (low-delay) trees, non-critical nets keep negotiating congestion;
* **A\\*** -- an admissible geometric lower bound over the graph's flattened
  coordinate arrays prunes the Dijkstra frontier: one switch-box or
  connection-box hop moves at most one unit in each coordinate, so
  ``manhattan / 2`` hops (times the cheapest possible per-node cost) never
  over-estimates the remaining cost.  ``RoutingResult.node_pops`` counts heap
  pops, the headline counter A* reduces.  Each search is additionally pruned
  to the net's terminal bounding box (plus a margin); a net that cannot be
  reached inside its box falls back to an unpruned search, so pruning never
  costs routability.

The router is **incremental**: the first iteration routes every net, but
later iterations rip up and re-route only *dirty* nets — nets whose routed
trees touch an overused node — escalating to full-recovery sweeps when the
negotiation stalls (see ``route_design``).  ``route_design(..., warm_start=
...)`` additionally seeds iteration 1 with externally provided legal trees
(the sweep engine's channel-width-ladder cache), routing only the nets whose
seed trees do not validate on this graph.

``route_design(..., incremental=False)`` restores the classic
re-route-everything schedule; ``astar=False`` restores plain Dijkstra (the
parity reference for the A* counters).

After negotiation, :func:`refine_critical_nets` post-optimises a legal
routing for cycle time: critical nets are ripped up one at a time and
re-routed on a *pure-delay* cost under hard capacity constraints, keeping the
new tree only when its delay actually improved — legality and every other
net's delay are untouched, so the handshake cycle time is monotonically
non-increasing.

Before routing, logical PLB pins are assigned to physical pins: every external
input net of a packed PLB gets one of the PLB's ``in*`` pins and every
externally consumed output one of the ``out*`` pins, in deterministic order.
Primary inputs/outputs use the IO pads chosen by the placer.
"""

from __future__ import annotations

import heapq
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cad.kernels import resolve_kernel
from repro.cad.lemap import MappedDesign
from repro.cad.place import Placement
from repro.cad.timing import TimingModel
from repro.core.rrgraph import RoutingResourceGraph
from repro.core.schema import CorruptArtifactError, decoding, require_version

#: Schema version of :meth:`RoutingResult.to_dict` payloads.  Node ids are
#: serialized as RR-graph node *names* (stable per fabric across processes);
#: object identity never crosses the boundary.
ROUTING_SCHEMA = 1

#: Criticality is capped below 1.0 so congestion never fully vanishes from a
#: critical net's cost -- negotiation must stay able to resolve overuse.
MAX_CRITICALITY = 0.98

#: Default margin (in channel units) added around a net's terminal bounding
#: box for search pruning; ``None`` disables pruning.
DEFAULT_BBOX_MARGIN = 3


#: Worker cap for grouped (net-parallel) routing under the numpy kernel.
PARALLEL_ROUTE_WORKERS = max(1, min(4, os.cpu_count() or 1))

#: Grouped routing only engages when an iteration has at least this many
#: dirty nets — in practice the full-population iterations (the first, and
#: full-recovery sweeps), where group utilization is highest.  Small dirty
#: batches cannot amortize the snapshot/validation cost.
PARALLEL_MIN_DIRTY = 24


class RoutingError(RuntimeError):
    """Raised when the router cannot complete (unroutable or pin overflow)."""


@dataclass
class PinAssignment:
    """Physical pin chosen for one logical net at one placed block."""

    net: str
    block: str
    pin: str
    node_id: int
    is_driver: bool


@dataclass
class RoutedNet:
    """The routed tree of one net."""

    net: str
    source_node: int
    sink_nodes: list[int]
    nodes: list[int] = field(default_factory=list)

    @property
    def wirelength(self) -> int:
        return len(self.nodes)


@dataclass
class RoutingResult:
    """Everything the router produced.

    ``reroutes_per_iteration[i]`` is how many nets iteration ``i + 1``
    ripped up and re-routed; with incremental routing the tail entries are
    typically a small fraction of the net count (only nets touching overused
    nodes), which is the router's headline perf counter.  ``node_pops``
    counts Dijkstra/A* heap pops over the whole run -- the counter the A*
    lower bound reduces; ``warm_started_nets`` how many nets iteration 1
    inherited from a warm-start seed instead of routing.

    ``parallel_groups`` counts the net groups routed as concurrent
    speculative units across all grouped iterations (0 when grouping was
    disabled or never engaged); ``conflict_replays`` counts the nets
    whose speculative result was discarded at commit time — another
    group had already written a cell their search read — and which were
    therefore replayed serially at the true congestion state.
    """

    routed: dict[str, RoutedNet] = field(default_factory=dict)
    pin_assignments: list[PinAssignment] = field(default_factory=list)
    iterations: int = 0
    success: bool = False
    overused_nodes: int = 0
    reroutes_per_iteration: list[int] = field(default_factory=list)
    node_pops: int = 0
    warm_started_nets: int = 0
    bbox_fallbacks: int = 0
    critical_reroutes: int = 0
    parallel_groups: int = 0
    conflict_replays: int = 0

    @property
    def total_wirelength(self) -> int:
        return sum(net.wirelength for net in self.routed.values())

    @property
    def total_reroutes(self) -> int:
        """Net-route operations summed over all iterations."""
        return sum(self.reroutes_per_iteration)

    # ------------------------------------------------------------------
    # Serialization (the "routing" stage artifact)
    # ------------------------------------------------------------------
    def to_dict(self, graph: RoutingResourceGraph) -> dict[str, object]:
        """A JSON-safe, schema-versioned rendering keyed by RR node names."""
        nodes = graph.nodes

        def name_of(node_id: int) -> str:
            return nodes[node_id].name

        return {
            "schema": ROUTING_SCHEMA,
            "routed": {
                net: {
                    "source": name_of(tree.source_node),
                    "sinks": [name_of(node) for node in tree.sink_nodes],
                    "nodes": [name_of(node) for node in tree.nodes],
                }
                for net, tree in self.routed.items()
            },
            "pin_assignments": [
                {
                    "net": pin.net,
                    "block": pin.block,
                    "pin": pin.pin,
                    "node": name_of(pin.node_id),
                    "is_driver": pin.is_driver,
                }
                for pin in self.pin_assignments
            ],
            "iterations": self.iterations,
            "success": self.success,
            "overused_nodes": self.overused_nodes,
            "reroutes_per_iteration": list(self.reroutes_per_iteration),
            "node_pops": self.node_pops,
            "warm_started_nets": self.warm_started_nets,
            "bbox_fallbacks": self.bbox_fallbacks,
            "critical_reroutes": self.critical_reroutes,
            "parallel_groups": self.parallel_groups,
            "conflict_replays": self.conflict_replays,
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], graph: RoutingResourceGraph
    ) -> "RoutingResult":
        require_version(data, "routing", ROUTING_SCHEMA)
        with decoding("routing"):

            def id_of(name: str) -> int:
                try:
                    return graph.node_by_name(str(name)).node_id
                except KeyError:
                    raise CorruptArtifactError(
                        f"routing: node {name!r} does not exist on this fabric"
                    ) from None

            routed = {
                str(net): RoutedNet(
                    net=str(net),
                    source_node=id_of(entry["source"]),
                    sink_nodes=[id_of(name) for name in entry["sinks"]],
                    nodes=[id_of(name) for name in entry["nodes"]],
                )
                for net, entry in dict(data["routed"]).items()
            }
            pin_assignments = [
                PinAssignment(
                    net=str(entry["net"]),
                    block=str(entry["block"]),
                    pin=str(entry["pin"]),
                    node_id=id_of(entry["node"]),
                    is_driver=bool(entry["is_driver"]),
                )
                for entry in data["pin_assignments"]
            ]
            return cls(
                routed=routed,
                pin_assignments=pin_assignments,
                iterations=int(data["iterations"]),
                success=bool(data["success"]),
                overused_nodes=int(data["overused_nodes"]),
                reroutes_per_iteration=[int(n) for n in data["reroutes_per_iteration"]],
                node_pops=int(data["node_pops"]),
                warm_started_nets=int(data["warm_started_nets"]),
                bbox_fallbacks=int(data["bbox_fallbacks"]),
                critical_reroutes=int(data["critical_reroutes"]),
                # Additive (same schema version): absent in pre-parallel
                # artifacts, so default rather than fail.
                parallel_groups=int(data.get("parallel_groups", 0)),
                conflict_replays=int(data.get("conflict_replays", 0)),
            )

    def channel_occupancy(self, graph: RoutingResourceGraph) -> dict[int, int]:
        """Usage count per wire node (diagnostics / fabric-exploration bench)."""
        is_wire = graph.is_wire
        usage: dict[int, int] = {}
        for routed in self.routed.values():
            for node_id in routed.nodes:
                if is_wire[node_id]:
                    usage[node_id] = usage.get(node_id, 0) + 1
        return usage


def _collect_net_endpoints(
    design: MappedDesign,
    placement: Placement,
    graph: RoutingResourceGraph,
) -> tuple[dict[str, int], dict[str, list[int]], list[PinAssignment]]:
    """Compute, for every net that leaves a block, its source node and sink nodes."""
    fabric = graph.fabric
    assignments: list[PinAssignment] = []

    driver_plb: dict[str, str] = {}
    for plb in design.plbs:
        for net in plb.output_nets:
            driver_plb[net] = plb.name

    consumers: dict[str, list[str]] = {}
    for plb in design.plbs:
        for net in plb.external_input_nets:
            consumers.setdefault(net, []).append(plb.name)

    sources: dict[str, int] = {}
    sinks: dict[str, list[int]] = {}

    # Per-PLB physical pin allocation.
    input_pin_cursor: dict[str, int] = {plb.name: 0 for plb in design.plbs}
    output_pin_cursor: dict[str, int] = {plb.name: 0 for plb in design.plbs}
    input_pins = fabric.plb_input_pins()
    output_pins = fabric.plb_output_pins()

    def next_input_pin(plb_name: str) -> str:
        cursor = input_pin_cursor[plb_name]
        if cursor >= len(input_pins):
            raise RoutingError(f"PLB {plb_name} needs more than {len(input_pins)} input pins")
        input_pin_cursor[plb_name] = cursor + 1
        return input_pins[cursor]

    def next_output_pin(plb_name: str) -> str:
        cursor = output_pin_cursor[plb_name]
        if cursor >= len(output_pins):
            raise RoutingError(f"PLB {plb_name} needs more than {len(output_pins)} output pins")
        output_pin_cursor[plb_name] = cursor + 1
        return output_pins[cursor]

    interesting_nets: list[str] = []
    for net in sorted(set(list(consumers) + design.primary_outputs)):
        driven_by_plb = net in driver_plb
        consumed_by_plbs = [
            name for name in consumers.get(net, []) if name != driver_plb.get(net)
        ]
        is_primary_output = net in design.primary_outputs
        is_primary_input = net in design.primary_inputs
        needs_routing = (
            (driven_by_plb and (consumed_by_plbs or is_primary_output))
            or (is_primary_input and consumers.get(net))
            # Pad-to-pad pass-through: a primary input that is also a primary
            # output with no PLB consumers still needs a fabric path from its
            # pad's output pin back to its input pin (small CRC chains shift
            # initial-vector bits straight out).
            or (is_primary_input and is_primary_output)
        )
        if needs_routing:
            interesting_nets.append(net)

    for net in interesting_nets:
        # Source.
        if net in driver_plb:
            plb_name = driver_plb[net]
            x, y = placement.site_of(plb_name)
            pin = next_output_pin(plb_name)
            node = graph.opin(x, y, pin)
            assignments.append(PinAssignment(net, plb_name, pin, node.node_id, True))
        elif net in design.primary_inputs:
            pad = placement.pad_of(net)
            node = graph.io_opin(pad)
            assignments.append(PinAssignment(net, pad.name, "out", node.node_id, True))
        else:
            continue
        sources[net] = node.node_id

        # Sinks.
        net_sinks: list[int] = []
        for plb_name in consumers.get(net, []):
            if net in driver_plb and plb_name == driver_plb[net]:
                continue  # internal to the PLB, no routing needed
            x, y = placement.site_of(plb_name)
            pin = next_input_pin(plb_name)
            sink = graph.ipin(x, y, pin)
            assignments.append(PinAssignment(net, plb_name, pin, sink.node_id, False))
            net_sinks.append(sink.node_id)
        if net in design.primary_outputs and (
            net in driver_plb or net in design.primary_inputs
        ):
            pad = placement.pad_of(net)
            sink = graph.io_ipin(pad)
            assignments.append(PinAssignment(net, pad.name, "in", sink.node_id, False))
            net_sinks.append(sink.node_id)
        if net_sinks:
            sinks[net] = net_sinks
        else:
            sources.pop(net, None)

    return sources, sinks, assignments


def _delay_costs(graph: RoutingResourceGraph, model: TimingModel) -> list[float]:
    """Per-node delay cost in HPWL-comparable units (wire segments).

    A wire node costs one segment plus one switch traversal; a pin node one
    connection-box crossing.  Normalising by the wire-segment delay keeps the
    timing term on the same scale as the congestion term (base cost 1.0 per
    node), so the ``crit``-blend stays balanced.
    """
    wire = float(model.wire_segment_delay_ps)
    wire_cost = (model.wire_segment_delay_ps + model.switch_delay_ps) / wire
    pin_cost = model.cbox_delay_ps / wire
    return [wire_cost if is_wire else pin_cost for is_wire in graph.is_wire]


def _validate_warm_tree(
    graph: RoutingResourceGraph,
    nodes: Sequence[int],
    source: int,
    targets: set[int],
) -> list[int] | None:
    """The connected, orphan-free subtree of *nodes*, or ``None`` if unusable.

    A warm-start tree (possibly mapped over from a different channel width)
    is usable when every node id exists on this graph and the source still
    reaches every sink through the tree's own nodes; nodes the source cannot
    reach are dropped rather than occupied for nothing.
    """
    node_count = len(graph)
    tree = {node_id for node_id in nodes if 0 <= node_id < node_count}
    if source not in tree or not targets.issubset(tree):
        return None
    edge_starts = graph.edge_starts
    edge_targets = graph.edge_targets
    reachable = {source}
    frontier = [source]
    while frontier:
        node_id = frontier.pop()
        for neighbour in edge_targets[edge_starts[node_id] : edge_starts[node_id + 1]]:
            if neighbour in tree and neighbour not in reachable:
                reachable.add(neighbour)
                frontier.append(neighbour)
    if not targets.issubset(reachable):
        return None
    return sorted(reachable)


def route_design(
    design: MappedDesign,
    placement: Placement,
    graph: RoutingResourceGraph,
    max_iterations: int = 30,
    pres_fac_initial: float = 0.5,
    pres_fac_mult: float = 1.6,
    hist_fac: float = 0.4,
    incremental: bool = True,
    criticalities: Mapping[str, float] | None = None,
    timing_model: TimingModel | None = None,
    astar: bool = True,
    bbox_margin: int | None = DEFAULT_BBOX_MARGIN,
    warm_start: Mapping[str, Sequence[int]] | None = None,
    restart_on_failure: bool = True,
    kernel: str = "python",
    parallel: bool = True,
) -> RoutingResult:
    """PathFinder routing of all inter-block nets of a placed design.

    With ``incremental=True`` (the default) only dirty nets — nets whose
    routed trees touch an overused node — are ripped up and re-routed after
    the first iteration; ``incremental=False`` re-routes every net each
    iteration (the classic schedule, kept as the parity/quality reference).

    ``criticalities`` switches the node cost to the timing-driven blend
    ``crit * delay + (1 - crit) * congestion`` (per-net criticality from the
    timing engine, capped at :data:`MAX_CRITICALITY`); ``timing_model``
    supplies the delay numbers (defaults to :class:`TimingModel`).

    ``astar`` enables the admissible geometric lower bound (identical path
    costs, fewer heap pops — see ``RoutingResult.node_pops``); ``bbox_margin``
    prunes each search to the net's terminal bounding box plus that margin,
    falling back to an unpruned search when the box turns out too tight.

    ``warm_start`` maps net names to node-id trees (typically a neighbouring
    channel width's legal routing): validating trees seed iteration 1, the
    rest route normally.

    ``restart_on_failure`` controls the built-in escalation: a failed A*
    negotiation restarts once with plain Dijkstra ordering so enabling A*
    can never cost routability.  Callers managing their own fallback ladder
    (the timing-driven flow) disable it to avoid paying twice.

    ``kernel`` selects the cost-evaluation backend (see
    :mod:`repro.cad.kernels`): ``"python"`` is the reference, ``"numpy"``
    precomputes vectorized congestion costs and A* bounds, ``"auto"``
    picks numpy when installed.  Both backends produce bit-identical
    results, trees and counters.

    ``parallel`` enables grouped routing: each iteration's dirty nets are
    partitioned into fabric-quadrant groups routed speculatively against
    private snapshots of the iteration-start congestion — concurrently
    under the numpy kernel, in a deterministic serial schedule under the
    python kernel.  Capacity conflicts are detected at commit time (a
    net's search visited a cell another group already wrote) and the
    conflicting nets are replayed serially at the true state, so results
    are bit-identical to ``parallel=False`` regardless of kernel or
    thread scheduling.  ``RoutingResult.parallel_groups`` counts groups
    attempted, ``conflict_replays`` counts nets replayed.
    """
    sources, sinks, assignments = _collect_net_endpoints(design, placement, graph)

    result = RoutingResult(pin_assignments=assignments)
    if not sources:
        result.success = True
        return result

    node_count = len(graph)
    occupancy = [0] * node_count
    history = [0.0] * node_count
    base_cost = graph.base_cost
    capacity = graph.capacity
    is_wire = graph.is_wire
    edge_starts = graph.edge_starts
    edge_targets = graph.edge_targets
    node_x = graph.x
    node_y = graph.y
    routes: dict[str, RoutedNet] = {}

    timing_driven = criticalities is not None
    if timing_driven:
        model = timing_model if timing_model is not None else TimingModel()
        delay_cost = _delay_costs(graph, model)
        min_delay_cost = min(delay_cost)
    else:
        delay_cost = []
        min_delay_cost = 0.0
    min_base_cost = min(base_cost)

    # The overused-node set is maintained incrementally as tree occupancies
    # change, so no iteration ever scans all graph nodes for congestion.
    overused: set[int] = set()

    def occupy(nodes: list[int]) -> None:
        for node_id in nodes:
            occupancy[node_id] += 1
            if occupancy[node_id] > capacity[node_id]:
                overused.add(node_id)

    def release(nodes: list[int]) -> None:
        for node_id in nodes:
            occupancy[node_id] -= 1
            if occupancy[node_id] <= capacity[node_id]:
                overused.discard(node_id)

    # Pin nodes belong to exactly one net by construction, so congestion only
    # develops on wires.
    pres_fac = pres_fac_initial

    use_astar = astar

    backend = resolve_kernel(kernel)
    if backend == "numpy":
        from repro.cad.kernels.routing import RouterCostTable

        table: "RouterCostTable | None" = RouterCostTable(
            graph, occupancy, history, hist_fac, delay_cost if timing_driven else None
        )
    else:
        table = None

    def search_python(
        net: str,
        crit: float,
        box: tuple[int, int, int, int] | None,
        occupancy: list[int],
        cells: set[int] | None,
    ) -> tuple[RoutedNet | None, int]:
        """Grow one net's tree; ``(None, pops)`` when the box was too tight.

        ``occupancy`` is the congestion state to search against (the live
        router state, or a group-private snapshot during parallel phase 1);
        ``cells`` (when given) collects the fabric cells of every node the
        search visits, for commit-time conflict detection.
        """
        source = sources[net]
        targets = set(sinks[net])
        tree: set[int] = {source}
        all_nodes: set[int] = {source}
        remaining = set(targets)
        infinity = float("inf")
        anti_crit = 1.0 - crit
        # The cheapest possible per-node cost, for the A* lower bound: every
        # hop costs at least this much, and one hop shrinks the Manhattan
        # distance to a sink by at most 2 (a diagonal switch-box step).
        half_fac = 0.5 * (crit * min_delay_cost + anti_crit * min_base_cost)
        pops = 0
        heappush = heapq.heappush
        heappop = heapq.heappop
        cell_of = geometry["cell_of"] if cells is not None else None
        while remaining:
            if use_astar:
                sink_coords = [(node_x[s], node_y[s]) for s in remaining]
                if len(sink_coords) == 1:
                    only_sx, only_sy = sink_coords[0]

                    def lower_bound(node_id: int) -> float:
                        return half_fac * (
                            abs(node_x[node_id] - only_sx) + abs(node_y[node_id] - only_sy)
                        )

                else:

                    def lower_bound(node_id: int) -> float:
                        nx = node_x[node_id]
                        ny = node_y[node_id]
                        return half_fac * min(
                            abs(nx - sx) + abs(ny - sy) for sx, sy in sink_coords
                        )

            else:

                def lower_bound(node_id: int) -> float:
                    return 0.0

            # Dijkstra/A* from the current tree to the nearest remaining sink.
            # Flat per-node arrays replace dict/set frontier bookkeeping: the
            # comparisons and updates are identical, only cheaper.
            distances = [infinity] * node_count
            previous = [0] * node_count
            visited = bytearray(node_count)
            for node_id in tree:
                distances[node_id] = 0.0
            heap = [(lower_bound(node_id), 0.0, node_id) for node_id in tree]
            heapq.heapify(heap)
            found = -1
            while heap:
                _priority, distance, node_id = heappop(heap)
                pops += 1
                if visited[node_id]:
                    continue
                visited[node_id] = 1
                if cells is not None:
                    cells.add(cell_of[node_id])
                if node_id in remaining:
                    found = node_id
                    break
                for neighbour in edge_targets[edge_starts[node_id] : edge_starts[node_id + 1]]:
                    if visited[neighbour]:
                        continue
                    # Do not route through foreign pins.
                    if not is_wire[neighbour]:
                        if neighbour not in remaining and neighbour != source:
                            continue
                    elif box is not None and not (
                        box[0] <= node_x[neighbour] <= box[1]
                        and box[2] <= node_y[neighbour] <= box[3]
                    ):
                        continue
                    # Inlined PathFinder node cost: present congestion
                    # (discounting this net's own usage) plus history, blended
                    # with the node delay under the net's criticality.
                    usage = occupancy[neighbour]
                    if neighbour in all_nodes:
                        usage -= 1
                    over = usage + 1 - capacity[neighbour]
                    step = base_cost[neighbour]
                    if over > 0:
                        step *= 1.0 + pres_fac * over
                    step += hist_fac * history[neighbour]
                    if timing_driven:
                        step = crit * delay_cost[neighbour] + anti_crit * step
                    new_distance = distance + step
                    if new_distance < distances[neighbour]:
                        distances[neighbour] = new_distance
                        previous[neighbour] = node_id
                        heappush(
                            heap,
                            (new_distance + lower_bound(neighbour), new_distance, neighbour),
                        )
            if found < 0:
                return None, pops
            # Back-trace the path into the tree.
            cursor = found
            while cursor not in tree:
                all_nodes.add(cursor)
                tree.add(cursor)
                cursor = previous[cursor]
            remaining.discard(found)
        routed = RoutedNet(
            net=net, source_node=source, sink_nodes=list(targets), nodes=sorted(all_nodes)
        )
        return routed, pops

    def search_numpy(
        net: str,
        crit: float,
        box: tuple[int, int, int, int] | None,
        occupancy: list[int],
        view,
        cells: set[int] | None,
    ) -> tuple[RoutedNet | None, int]:
        """The same search over the kernel's precomputed cost/bound arrays.

        ``view`` (a :class:`RouterCostTable` or a group-private
        :class:`GroupCostView`) supplies ``cost_list[n]`` — exactly the
        step cost the reference search would derive for a node outside
        the net's own tree; in-tree nodes (the own-usage discount) fall
        back to the reference arithmetic.  The box prune is folded into
        the view's filtered adjacency, so the inner loop never tests it.
        """
        source = sources[net]
        targets = set(sinks[net])
        tree: set[int] = {source}
        all_nodes: set[int] = {source}
        remaining = set(targets)
        infinity = float("inf")
        anti_crit = 1.0 - crit
        half_fac = 0.5 * (crit * min_delay_cost + anti_crit * min_base_cost)
        pops = 0
        pres = view.pres_fac
        cost_list = view.cost_list(crit)
        neighbours = view.adjacency(box)
        zeros = view.zeros
        heappush = heapq.heappush
        heappop = heapq.heappop
        cell_of = geometry["cell_of"] if cells is not None else None
        while remaining:
            lb = view.lower_bounds(remaining, half_fac) if use_astar else zeros
            distances = [infinity] * node_count
            previous = [0] * node_count
            visited = bytearray(node_count)
            for node_id in tree:
                distances[node_id] = 0.0
            heap = [(lb[node_id], 0.0, node_id) for node_id in tree]
            heapq.heapify(heap)
            found = -1
            # The tree and the remaining-sink set are fixed for the whole
            # sink search, so both net-specific cost exceptions — the
            # own-usage discount for tree nodes and the real (non-inf)
            # cost of the net's own sink pins — are patched straight into
            # the cost list up front (the reference arithmetic,
            # element-wise).  The relaxation below is then a single list
            # lookup per edge: foreign pins fail it numerically at +inf.
            # Restored on exit.
            patched = []
            for node_id in all_nodes:
                over = occupancy[node_id] - capacity[node_id]
                step = base_cost[node_id]
                if over > 0:
                    step *= 1.0 + pres * over
                step += hist_fac * history[node_id]
                if timing_driven:
                    step = crit * delay_cost[node_id] + anti_crit * step
                patched.append((node_id, cost_list[node_id]))
                cost_list[node_id] = step
            for node_id in remaining:
                over = occupancy[node_id] + 1 - capacity[node_id]
                step = base_cost[node_id]
                if over > 0:
                    step *= 1.0 + pres * over
                step += hist_fac * history[node_id]
                if timing_driven:
                    step = crit * delay_cost[node_id] + anti_crit * step
                patched.append((node_id, cost_list[node_id]))
                cost_list[node_id] = step
            try:
                while heap:
                    _priority, distance, node_id = heappop(heap)
                    pops += 1
                    if visited[node_id]:
                        continue
                    visited[node_id] = 1
                    if cells is not None:
                        cells.add(cell_of[node_id])
                    if node_id in remaining:
                        found = node_id
                        break
                    for neighbour in neighbours[node_id]:
                        if visited[neighbour]:
                            continue
                        new_distance = distance + cost_list[neighbour]
                        if new_distance < distances[neighbour]:
                            distances[neighbour] = new_distance
                            previous[neighbour] = node_id
                            heappush(
                                heap,
                                (new_distance + lb[neighbour], new_distance, neighbour),
                            )
            finally:
                for node_id, old_cost in patched:
                    cost_list[node_id] = old_cost
            if found < 0:
                return None, pops
            cursor = found
            while cursor not in tree:
                all_nodes.add(cursor)
                tree.add(cursor)
                cursor = previous[cursor]
            remaining.discard(found)
        routed = RoutedNet(
            net=net, source_node=source, sink_nodes=list(targets), nodes=sorted(all_nodes)
        )
        return routed, pops

    if table is None:

        def search_impl(net, crit, box, occ, view, cells):
            return search_python(net, crit, box, occ, cells)

    else:
        search_impl = search_numpy

    def search(
        net: str, crit: float, box: tuple[int, int, int, int] | None
    ) -> tuple[RoutedNet | None, int]:
        return search_impl(net, crit, box, occupancy, table, None)

    def net_box(net: str) -> tuple[int, int, int, int] | None:
        if bbox_margin is None:
            return None
        terminals = [sources[net]] + sinks[net]
        xs = [node_x[node_id] for node_id in terminals]
        ys = [node_y[node_id] for node_id in terminals]
        return (
            min(xs) - bbox_margin,
            max(xs) + bbox_margin,
            min(ys) - bbox_margin,
            max(ys) + bbox_margin,
        )

    def net_crit(net: str) -> float:
        if not timing_driven:
            return 0.0
        return min(MAX_CRITICALITY, max(0.0, criticalities.get(net, 0.0)))

    def route_net(net: str) -> tuple[RoutedNet, int]:
        crit = net_crit(net)
        routed, pops = search(net, crit, net_box(net))
        if routed is None and bbox_margin is not None:
            # The pruning box was too tight (congestion pushed the net out of
            # its own bounding box): retry without pruning before declaring
            # the net unroutable.
            result.bbox_fallbacks += 1
            routed, extra_pops = search(net, crit, None)
            pops += extra_pops
        if routed is None:
            raise RoutingError(f"net {net!r} is unroutable (no path to a sink)")
        return routed, pops

    # ------------------------------------------------------------------
    # Grouped (net-parallel) iteration machinery
    #
    # Each grouped iteration runs in two phases.  Phase 1 partitions the
    # dirty nets into fabric-quadrant groups and routes every group
    # against a *private snapshot* of the iteration-start congestion
    # state (concurrently under the numpy kernel, a deterministic serial
    # schedule otherwise), recording the fabric cells each search visits.
    # Phase 2 walks the dirty nets in the serial order and commits each
    # phase-1 tree — unless a cell the net's search visited was already
    # written by an earlier net of a *different* group, in which case the
    # net is replayed serially against the true state (counted in
    # ``conflict_replays``).
    #
    # Soundness of the conflict check: every edge of the RR graph spans
    # at most one cell per axis (verified once per graph), so everything
    # a search *reads* — the costs of the neighbours it relaxes — lies
    # within one cell of the cells it visits.  Committed writes are
    # therefore marked with a one-cell halo: a net whose visited cells
    # miss every foreign halo read exactly the state the serial schedule
    # would have shown it, making its phase-1 tree and pop count
    # bit-identical to the serial router's.  A replay that lands a
    # different tree than phase 1 taints its group (later group-mates
    # routed against a stale snapshot), forcing them through the serial
    # path too.
    # ------------------------------------------------------------------
    geometry: dict = {}

    def grouped_geometry() -> dict:
        """Lazy fabric geometry for tile partitioning and conflict tracking.

        ``locality`` records whether every graph edge spans at most one
        cell per axis — the property that confines a search's read set to
        the one-cell dilation of its visited cells.  Exotic graphs with
        long-range edges simply never route grouped.
        """
        if geometry:
            return geometry
        x_lo = min(node_x)
        x_hi = max(node_x)
        y_lo = min(node_y)
        y_hi = max(node_y)
        y_span = y_hi - y_lo + 1
        cell_of = [
            (node_x[node_id] - x_lo) * y_span + (node_y[node_id] - y_lo)
            for node_id in range(node_count)
        ]
        locality = getattr(graph, "_edge_locality_ok", None)
        if locality is None:
            locality = True
            for node_id in range(node_count):
                x = node_x[node_id]
                y = node_y[node_id]
                for neighbour in edge_targets[
                    edge_starts[node_id] : edge_starts[node_id + 1]
                ]:
                    if abs(node_x[neighbour] - x) > 1 or abs(node_y[neighbour] - y) > 1:
                        locality = False
                        break
                if not locality:
                    break
            graph._edge_locality_ok = locality
        geometry.update(
            x_lo=x_lo,
            x_hi=x_hi,
            y_lo=y_lo,
            y_hi=y_hi,
            y_span=y_span,
            x_cells=x_hi - x_lo + 1,
            cell_of=cell_of,
            locality=locality,
            halos={},
        )
        return geometry

    def cell_halo(cell: int) -> tuple:
        """The 3x3 in-bounds cell neighbourhood of a fabric cell (cached)."""
        halos = geometry["halos"]
        cached = halos.get(cell)
        if cached is None:
            y_span = geometry["y_span"]
            x_cells = geometry["x_cells"]
            cell_x, cell_y = divmod(cell, y_span)
            cells = []
            for dx in (-1, 0, 1):
                x = cell_x + dx
                if 0 <= x < x_cells:
                    for dy in (-1, 0, 1):
                        y = cell_y + dy
                        if 0 <= y < y_span:
                            cells.append(x * y_span + y)
            cached = tuple(cells)
            halos[cell] = cached
        return cached

    def tile_groups(dirty: list[str]) -> list[list[str]]:
        """Partition dirty nets into fabric quadrants by terminal-box center.

        A pure spatial split: nets whose activity centers share a
        quadrant negotiate against each other constantly and belong
        together; cross-quadrant interactions are the (checked,
        replayable) exception.  Net order within a group preserves the
        serial dirty order.
        """
        x_mid = geometry["x_lo"] + geometry["x_hi"]
        y_mid = geometry["y_lo"] + geometry["y_hi"]
        grouped: dict[int, list[str]] = {}
        for net in dirty:
            terminals = [sources[net]] + sinks[net]
            xs = [node_x[node_id] for node_id in terminals]
            ys = [node_y[node_id] for node_id in terminals]
            tile = (2 if min(xs) + max(xs) > x_mid else 0) + (
                1 if min(ys) + max(ys) > y_mid else 0
            )
            grouped.setdefault(tile, []).append(net)
        return [grouped[tile] for tile in sorted(grouped)]

    def run_group(nets: list[str]) -> dict:
        """Phase 1: route one group's nets against a private snapshot.

        Maps each net to ``(tree, pops, visited_cells)``, or ``None`` when
        the pruning box was too tight under the snapshot (the commit pass
        replays it, with the box fallback, at the true state).  Live
        router state is never touched.
        """
        group_occupancy = occupancy[:]
        view = table.group_view(group_occupancy) if table is not None else None
        out: dict = {}
        for net in nets:
            previous_route = routes.get(net)
            if previous_route is not None:
                for node_id in previous_route.nodes:
                    group_occupancy[node_id] -= 1
                if view is not None:
                    view.update(previous_route.nodes)
            cells: set[int] = set()
            routed, pops = search_impl(
                net, net_crit(net), net_box(net), group_occupancy, view, cells
            )
            if routed is None:
                # Later group-mates would route against a snapshot the
                # serial schedule can never produce; leave them to the
                # commit pass's replay path.
                out[net] = None
                break
            for node_id in routed.nodes:
                group_occupancy[node_id] += 1
            if view is not None:
                view.update(routed.nodes)
            out[net] = (routed, pops, cells)
        return out

    def route_groups(groups: list[list[str]], dirty: list[str]) -> None:
        """Phase 2: validate and commit phase-1 trees in serial net order."""
        if table is not None and len(groups) > 1:
            workers = min(len(groups), PARALLEL_ROUTE_WORKERS)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                phase1 = list(pool.map(run_group, groups))
        else:
            phase1 = [run_group(group) for group in groups]
        group_of = {net: gid for gid, nets in enumerate(groups) for net in nets}
        phase1_results: dict = {}
        for out in phase1:
            phase1_results.update(out)
        cell_of = geometry["cell_of"]
        written: dict[int, int] = {}
        tainted = [False] * len(groups)
        for net in dirty:
            gid = group_of[net]
            res = phase1_results.get(net)
            valid = res is not None and not tainted[gid]
            if valid:
                routed, pops, cells = res
                for cell in cells:
                    owner = written.get(cell)
                    if owner is not None and owner != gid:
                        valid = False
                        break
            previous_route = routes.get(net)
            if previous_route is not None:
                release(previous_route.nodes)
                if table is not None:
                    table.update(previous_route.nodes)
            if not valid:
                routed, pops = route_net(net)
                result.conflict_replays += 1
                if res is None or routed.nodes != res[0].nodes:
                    tainted[gid] = True
            result.node_pops += pops
            routes[net] = routed
            occupy(routed.nodes)
            if table is not None:
                table.update(routed.nodes)
            # Publish this net's writes (old tree released, new tree
            # occupied) with a one-cell halo for later nets' read checks.
            # Pin nodes are excluded: a pin belongs to exactly one net, so
            # no other net's search ever reads a foreign pin's cost.
            touched = {
                cell_of[node_id] for node_id in routed.nodes if is_wire[node_id]
            }
            if previous_route is not None:
                touched.update(
                    cell_of[node_id]
                    for node_id in previous_route.nodes
                    if is_wire[node_id]
                )
            for cell in touched:
                for halo_cell in cell_halo(cell):
                    owner = written.get(halo_cell)
                    if owner is None:
                        written[halo_cell] = gid
                    elif owner != gid:
                        written[halo_cell] = -1
        result.parallel_groups += len(groups)

    net_order = sorted(sources)

    warm_started: set[str] = set()
    if warm_start:
        for net in net_order:
            seed = warm_start.get(net)
            if not seed:
                continue
            tree = _validate_warm_tree(graph, seed, sources[net], set(sinks[net]))
            if tree is None:
                continue
            routes[net] = RoutedNet(
                net=net, source_node=sources[net], sink_nodes=list(sinks[net]), nodes=tree
            )
            occupy(tree)
            warm_started.add(net)
    result.warm_started_nets = len(warm_started)

    iteration = 0
    best_overuse: int | None = None
    stalled = 0
    full_recovery = False
    for iteration in range(1, max_iterations + 1):
        if iteration == 1:
            dirty = [net for net in net_order if net not in warm_started]
        elif not incremental or full_recovery:
            dirty = net_order
        else:
            # Only nets whose trees touch an overused node must move; the
            # rest keep their (legal) routes and their occupancies.
            dirty = [
                net
                for net in net_order
                if any(node_id in overused for node_id in routes[net].nodes)
            ]
        if table is not None:
            # Vectorized congestion/history cost recompute: pres_fac and
            # history are fixed for the whole iteration, so one pass gives
            # every search below its cost table.
            table.refresh(pres_fac)
        routed_grouped = False
        if parallel and len(dirty) >= PARALLEL_MIN_DIRTY and grouped_geometry()["locality"]:
            groups = tile_groups(dirty)
            if len(groups) > 1:
                route_groups(groups, dirty)
                routed_grouped = True
        if not routed_grouped:
            for net in dirty:
                previous_route = routes.get(net)
                if previous_route is not None:
                    release(previous_route.nodes)
                    if table is not None:
                        table.update(previous_route.nodes)
                routed, pops = route_net(net)
                result.node_pops += pops
                routes[net] = routed
                occupy(routed.nodes)
                if table is not None:
                    table.update(routed.nodes)
        result.reroutes_per_iteration.append(len(dirty))

        if not overused:
            result.routed = routes
            result.iterations = iteration
            result.success = True
            result.overused_nodes = 0
            return result
        # Dirty-net-only negotiation can livelock: a handful of nets swap
        # one contested node back and forth while every alternative path is
        # held by clean nets that never move (their paths inflate with
        # pres_fac just as fast as the contested node).  When total overuse
        # stops improving, escalate into *full-recovery* mode: restart the
        # present-congestion pressure at its initial value and re-route every
        # net each iteration — history keeps the long-term congestion signal,
        # and the restarted pressure lets the whole net population
        # redistribute the way early iterations do.  Recovery ends at the
        # first improvement, returning to cheap dirty-net iterations.
        # Well-behaved runs (monotonically shrinking overuse) never escalate.
        if incremental:
            total_overuse = sum(
                occupancy[node_id] - capacity[node_id] for node_id in overused
            )
            if best_overuse is None or total_overuse < best_overuse:
                best_overuse = total_overuse
                stalled = 0
                full_recovery = False
            elif not full_recovery:
                stalled += 1
                if stalled >= 3:
                    full_recovery = True
                    stalled = 0
                    pres_fac = pres_fac_initial
        for node_id in overused:
            history[node_id] += occupancy[node_id] - capacity[node_id]
        pres_fac *= pres_fac_mult

    result.routed = routes
    result.iterations = iteration
    result.success = False
    result.overused_nodes = len(overused)
    if astar and restart_on_failure:
        # A* is a search *accelerator*, not a quality knob: its tie-breaking
        # steers equal-cost paths onto the geometric straight line, which
        # can concentrate traffic enough to livelock a borderline-congested
        # negotiation that classic frontier ordering resolves.  Rather than
        # let the accelerator cost routability, restart the whole
        # negotiation with plain Dijkstra — bit-identical to astar=False —
        # and carry the counters over so the retry's cost stays visible.
        retry = route_design(
            design,
            placement,
            graph,
            max_iterations=max_iterations,
            pres_fac_initial=pres_fac_initial,
            pres_fac_mult=pres_fac_mult,
            hist_fac=hist_fac,
            incremental=incremental,
            criticalities=criticalities,
            timing_model=timing_model,
            astar=False,
            bbox_margin=bbox_margin,
            warm_start=warm_start,
            kernel=backend,
            parallel=parallel,
        )
        retry.node_pops += result.node_pops
        retry.bbox_fallbacks += result.bbox_fallbacks
        retry.parallel_groups += result.parallel_groups
        retry.conflict_replays += result.conflict_replays
        retry.reroutes_per_iteration = (
            result.reroutes_per_iteration + retry.reroutes_per_iteration
        )
        retry.iterations += result.iterations
        return retry
    return result


class _RefineRouter:
    """Single-net searches over a live occupancy map (the refinement pass).

    Three cost modes share one A* search:

    * ``delay-hard`` — pure node delay, nodes that would become overused are
      not expanded (legal by construction);
    * ``delay-free`` — pure node delay with a *tiny* overuse tie-breaker:
      finds the net's minimum-delay tree, preferring the variant that
      displaces the fewest other nets;
    * ``congestion-hard`` — plain base cost under hard capacity, used to
      relocate the nets a critical net displaced.
    """

    def __init__(self, graph: RoutingResourceGraph, model: TimingModel, astar: bool) -> None:
        self.graph = graph
        self.model = model
        self.astar = astar
        self.delay_cost = _delay_costs(graph, model)
        self.min_delay_cost = min(self.delay_cost)
        self.min_base_cost = min(graph.base_cost)
        self.occupancy = [0] * len(graph)
        #: Which nets occupy each node (for displacement bookkeeping).
        self.users: dict[int, set[str]] = {}
        self.pops = 0

    def occupy(self, net: str, nodes: Sequence[int]) -> None:
        for node_id in nodes:
            self.occupancy[node_id] += 1
            self.users.setdefault(node_id, set()).add(net)

    def release(self, net: str, nodes: Sequence[int]) -> None:
        for node_id in nodes:
            self.occupancy[node_id] -= 1
            users = self.users.get(node_id)
            if users is not None:
                users.discard(net)

    def search(
        self, source: int, targets: set[int], mode: str
    ) -> list[int] | None:
        """The tree of one net under *mode*, or ``None`` when unreachable."""
        graph = self.graph
        capacity = graph.capacity
        is_wire = graph.is_wire
        base_cost = graph.base_cost
        edge_starts = graph.edge_starts
        edge_targets = graph.edge_targets
        node_x = graph.x
        node_y = graph.y
        delay_cost = self.delay_cost
        occupancy = self.occupancy
        hard = mode != "delay-free"
        delay_driven = mode != "congestion-hard"
        min_step = self.min_delay_cost if delay_driven else self.min_base_cost

        tree: set[int] = {source}
        all_nodes: set[int] = {source}
        remaining = set(targets)
        infinity = float("inf")
        while remaining:
            sink_coords = [(node_x[s], node_y[s]) for s in remaining]
            if self.astar:

                def lower_bound(node_id: int) -> float:
                    nx = node_x[node_id]
                    ny = node_y[node_id]
                    return (
                        0.5
                        * min_step
                        * min(abs(nx - sx) + abs(ny - sy) for sx, sy in sink_coords)
                    )

            else:

                def lower_bound(node_id: int) -> float:
                    return 0.0

            distances = {node_id: 0.0 for node_id in tree}
            previous: dict[int, int] = {}
            heap = [(lower_bound(node_id), 0.0, node_id) for node_id in tree]
            heapq.heapify(heap)
            visited: set[int] = set()
            found: int | None = None
            while heap:
                _priority, distance, node_id = heapq.heappop(heap)
                self.pops += 1
                if node_id in visited:
                    continue
                visited.add(node_id)
                if node_id in remaining:
                    found = node_id
                    break
                for neighbour in edge_targets[edge_starts[node_id] : edge_starts[node_id + 1]]:
                    if neighbour in visited:
                        continue
                    if not is_wire[neighbour]:
                        if neighbour not in remaining and neighbour != source:
                            continue
                    usage = occupancy[neighbour]
                    if neighbour in all_nodes:
                        usage -= 1
                    over = usage + 1 - capacity[neighbour]
                    if hard and over > 0:
                        continue
                    step = delay_cost[neighbour] if delay_driven else base_cost[neighbour]
                    if not hard and over > 0:
                        # Minimum-delay stays the objective; the epsilon just
                        # prefers the min-delay tree displacing fewest nets.
                        step += 0.001 * over
                    new_distance = distance + step
                    if new_distance < distances.get(neighbour, infinity):
                        distances[neighbour] = new_distance
                        previous[neighbour] = node_id
                        heapq.heappush(
                            heap,
                            (new_distance + lower_bound(neighbour), new_distance, neighbour),
                        )
            if found is None:
                return None
            cursor = found
            while cursor not in tree:
                all_nodes.add(cursor)
                tree.add(cursor)
                cursor = previous[cursor]
            remaining.discard(found)
        return sorted(all_nodes)


def refine_critical_nets(
    routing: RoutingResult,
    graph: RoutingResourceGraph,
    criticalities: Mapping[str, float],
    timing_model: TimingModel | None = None,
    crit_threshold: float = 0.6,
    astar: bool = True,
    displace: bool = True,
    max_wirelength: int | None = None,
) -> int:
    """Re-route critical nets of a *legal* routing for delay, in place.

    Nets with criticality >= *crit_threshold* are ripped up one at a time (in
    decreasing criticality) and re-routed on a **pure-delay** cost.  Two
    escalation levels keep the result legal by construction:

    1. *hard-capacity* re-route: the new tree may only use free resources —
       kept when its modelled delay strictly improves;
    2. *displacement* (``displace=True``): when free resources don't suffice,
       the net takes its minimum-delay tree anyway and every **less
       critical** net squatting on it is relocated under hard capacity; the
       whole bundle rolls back unless every displaced net finds a home, the
       critical net's delay strictly improves, and the total wirelength stays
       within *max_wirelength* (when given).

    Returns the number of critical nets whose trees actually improved (also
    accumulated on ``routing.critical_reroutes``); heap pops land on
    ``routing.node_pops``.  Delays only ever decrease on the refined nets and
    displaced nets stay legal, so iterating this pass (as the timing-driven
    flow does) monotonically converges.
    """
    if not routing.success or not routing.routed:
        return 0
    model = timing_model if timing_model is not None else TimingModel()
    router = _RefineRouter(graph, model, astar)
    for net, routed in routing.routed.items():
        router.occupy(net, routed.nodes)
    capacity = graph.capacity

    current_wirelength = routing.total_wirelength

    candidates = sorted(
        (net for net in routing.routed if criticalities.get(net, 0.0) >= crit_threshold),
        key=lambda net: (-criticalities.get(net, 0.0), net),
    )

    improved = 0
    for net in candidates:
        crit = criticalities.get(net, 0.0)
        old = routing.routed[net]
        old_delay = model.routed_net_delay(graph, old.nodes)
        source = old.source_node
        targets = set(old.sink_nodes)
        router.release(net, old.nodes)

        accepted: list[int] | None = None
        displaced_moves: list[tuple[str, list[int], list[int]]] = []

        hard_tree = router.search(source, targets, "delay-hard")
        if hard_tree is not None and model.routed_net_delay(graph, hard_tree) < old_delay:
            accepted = hard_tree
        elif displace:
            free_tree = router.search(source, targets, "delay-free")
            if (
                free_tree is not None
                and model.routed_net_delay(graph, free_tree) < old_delay
            ):
                # Who is in the way, and are they all less critical?
                victims: set[str] = set()
                blocked = False
                for node_id in free_tree:
                    if router.occupancy[node_id] + 1 > capacity[node_id]:
                        for victim in router.users.get(node_id, ()):
                            if criticalities.get(victim, 0.0) >= crit:
                                blocked = True
                                break
                            victims.add(victim)
                    if blocked:
                        break
                if not blocked:
                    for victim in sorted(victims):
                        router.release(victim, routing.routed[victim].nodes)
                    router.occupy(net, free_tree)
                    relocated: list[tuple[str, list[int], list[int]]] = []
                    success = True
                    for victim in sorted(victims):
                        victim_old = routing.routed[victim]
                        new_home = router.search(
                            victim_old.source_node,
                            set(victim_old.sink_nodes),
                            "congestion-hard",
                        )
                        if new_home is None:
                            success = False
                            break
                        router.occupy(victim, new_home)
                        relocated.append((victim, victim_old.nodes, new_home))
                    if success:
                        new_total = (
                            current_wirelength
                            - len(old.nodes)
                            + len(free_tree)
                            + sum(
                                len(new) - len(old_nodes)
                                for _v, old_nodes, new in relocated
                            )
                        )
                        if max_wirelength is not None and new_total > max_wirelength:
                            success = False
                    if success:
                        accepted = free_tree
                        displaced_moves = relocated
                    else:
                        # Roll back the bundle: re-seat every relocated
                        # victim on its old tree and vacate the new one.
                        for victim, old_nodes, new_home in relocated:
                            router.release(victim, new_home)
                        router.release(net, free_tree)
                        for victim in sorted(victims):
                            router.occupy(victim, routing.routed[victim].nodes)

        if accepted is None:
            router.occupy(net, old.nodes)
            continue

        if not displaced_moves:
            router.occupy(net, accepted)
        # (with displacement, occupancy was already updated in-flight)
        routing.routed[net] = RoutedNet(
            net=net, source_node=source, sink_nodes=list(old.sink_nodes), nodes=accepted
        )
        for victim, _old_nodes, new_home in displaced_moves:
            victim_routed = routing.routed[victim]
            routing.routed[victim] = RoutedNet(
                net=victim,
                source_node=victim_routed.source_node,
                sink_nodes=list(victim_routed.sink_nodes),
                nodes=new_home,
            )
        current_wirelength = routing.total_wirelength
        improved += 1

    routing.node_pops += router.pops
    routing.critical_reroutes += improved
    return improved
