"""The CAD flow: mapping, packing, placement, routing, timing and metrics.

The flow takes a gate-level circuit produced by :mod:`repro.styles` (or any
:class:`~repro.netlist.netlist.Netlist`) down to a configured fabric:

1. **Technology mapping** (:mod:`~repro.cad.techmap`) produces a
   :class:`~repro.cad.lemap.MappedDesign`: a set of LE-level functions
   (LUT7-3 outputs, LUT2-1 validity functions, programmable-delay
   assignments).  Two mappers are provided: a *template* mapper that uses the
   known structure of each logic style (this is what reproduces the paper's
   Figure 3 mappings and filling ratios) and a *generic* cone-based mapper for
   arbitrary netlists (used by the baselines and the ablation experiments).
2. **Packing** (:mod:`~repro.cad.pack`) groups LEs two-per-PLB under the PLB
   pin and interconnection-matrix constraints and attaches delay elements.
3. **Placement** (:mod:`~repro.cad.place`) assigns PLBs to fabric sites and
   primary IOs to pads using simulated annealing on the half-perimeter
   wirelength (optionally blended with criticality-weighted bounding-box
   delay in timing-driven mode).
4. **Routing** (:mod:`~repro.cad.route`) is a negotiated-congestion
   (PathFinder) router over the fabric's routing-resource graph, with
   A*-accelerated searches and optional timing-driven costs.
5. **Timing** (:mod:`~repro.cad.timing`), **metrics**
   (:mod:`~repro.cad.metrics`, including the paper's *filling ratio*) and
   **bitstream generation** complete the flow.

:class:`~repro.cad.flow.CadFlow` chains all the steps and returns a
:class:`~repro.cad.flow.FlowResult`.
"""

from repro.cad.lemap import LEFunction, MappedDesign, MappedLE, MappedPDE, MappedPLB
from repro.cad.techmap import template_map, generic_map
from repro.cad.pack import pack_design
from repro.cad.place import NetCostCache, Placement, TimingObjective, place_design
from repro.cad.route import RoutingResult, refine_critical_nets, route_design
from repro.cad.timing import TimingEngine, TimingModel, TimingReport, analyse_timing
from repro.cad.metrics import FillingRatioReport, filling_ratio, utilisation_report
from repro.cad.flow import CadFlow, FlowOptions, FlowResult

__all__ = [
    "LEFunction",
    "MappedLE",
    "MappedPDE",
    "MappedPLB",
    "MappedDesign",
    "template_map",
    "generic_map",
    "pack_design",
    "place_design",
    "Placement",
    "NetCostCache",
    "TimingObjective",
    "route_design",
    "refine_critical_nets",
    "RoutingResult",
    "TimingEngine",
    "TimingModel",
    "TimingReport",
    "analyse_timing",
    "filling_ratio",
    "FillingRatioReport",
    "utilisation_report",
    "CadFlow",
    "FlowOptions",
    "FlowResult",
]
