"""Configuration generation: from packed PLBs to PLB configurations and a
full fabric bitstream.

For every packed PLB the generator:

1. assigns the LE's logical input nets to physical LUT pins (``i0..``) and the
   validity inputs to ``v0``/``v1``;
2. rewrites the mapped truth tables over those physical pins;
3. routes the PLB's interconnection matrix: LE inputs are fed either from
   another LE output inside the PLB, from the PDE output, or from a PLB input
   pin (allocated deterministically); externally consumed outputs are routed
   to PLB output pins;
4. programs the PDE tap from the mapped matched delay.

The per-tile configurations are then serialised into the fabric-level
:class:`~repro.core.bitstream.Bitstream` using each block's ``config_vector``
layout, which the round-trip tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cad.lemap import MappedDesign, MappedPLB
from repro.cad.place import Placement
from repro.core.bitstream import Bitstream, BitstreamBudget
from repro.core.im import IMConfig
from repro.core.le import LEConfig
from repro.core.params import ArchitectureParams
from repro.core.pde import PDEConfig
from repro.core.plb import PLB, PLBConfig


class ConfigurationError(RuntimeError):
    """Raised when a packed PLB cannot be expressed as a legal configuration."""


@dataclass
class ConfiguredPLB:
    """One PLB's configuration plus the net <-> pin binding used to build it."""

    plb_name: str
    config: PLBConfig
    input_pin_of_net: dict[str, str] = field(default_factory=dict)
    output_pin_of_net: dict[str, str] = field(default_factory=dict)
    internal_signal_of_net: dict[str, str] = field(default_factory=dict)


def configure_plb(plb: MappedPLB, params: ArchitectureParams) -> ConfiguredPLB:
    """Build the :class:`PLBConfig` realising one packed PLB."""
    plb_params = params.plb
    le_params = plb_params.le
    reference = PLB(plb_params)

    internal_signal_of_net: dict[str, str] = {}
    for le_index, le in enumerate(plb.les):
        for function_index, function in enumerate(le.functions):
            internal_signal_of_net[function.output_net] = f"le{le_index}_o{function_index}"
        if le.validity is not None:
            internal_signal_of_net[le.validity.output_net] = f"le{le_index}_ov"
    if plb.pde is not None:
        internal_signal_of_net[plb.pde.output_net] = "pde_out"

    # Allocate PLB input pins for externally produced nets.
    input_pin_of_net: dict[str, str] = {}

    def input_signal_for(net: str) -> str:
        if net in internal_signal_of_net:
            return internal_signal_of_net[net]
        if net not in input_pin_of_net:
            index = len(input_pin_of_net)
            if index >= plb_params.plb_inputs:
                raise ConfigurationError(
                    f"PLB {plb.name} needs more than {plb_params.plb_inputs} input pins"
                )
            input_pin_of_net[net] = f"in{index}"
        return input_pin_of_net[net]

    im_routes: dict[str, str] = {}
    le_configs: list[LEConfig] = []

    for le_index, le in enumerate(plb.les):
        # Assign logical nets to physical LUT pins.
        pin_of_net: dict[str, str] = {}
        for net in le.lut_input_nets:
            if net not in pin_of_net:
                pin_index = len(pin_of_net)
                if pin_index >= le_params.lut_inputs:
                    raise ConfigurationError(
                        f"LE {le.name} needs more than {le_params.lut_inputs} LUT inputs"
                    )
                pin_of_net[net] = f"i{pin_index}"

        lut_tables = []
        for function in le.functions:
            lut_tables.append(function.table.rename(pin_of_net))
        while len(lut_tables) < le_params.lut_outputs:
            lut_tables.append(None)

        validity_table = None
        validity_pin_of_net: dict[str, str] = {}
        if le.validity is not None:
            for net in le.validity.input_nets:
                if net not in validity_pin_of_net:
                    pin_index = len(validity_pin_of_net)
                    if pin_index >= le_params.validity_lut_inputs:
                        raise ConfigurationError(
                            f"LE {le.name} validity function needs more than "
                            f"{le_params.validity_lut_inputs} inputs"
                        )
                    validity_pin_of_net[net] = f"v{pin_index}"
            validity_table = le.validity.table.rename(validity_pin_of_net)

        le_configs.append(LEConfig(lut_tables=lut_tables, validity_table=validity_table))

        # IM routes feeding this LE's pins.
        for net, pin in pin_of_net.items():
            im_routes[f"le{le_index}_{pin}"] = input_signal_for(net)
        for net, pin in validity_pin_of_net.items():
            im_routes[f"le{le_index}_{pin}"] = input_signal_for(net)

    # PDE configuration and feed.
    pde_config = PDEConfig()
    if plb.pde is not None:
        pde = reference.pde
        try:
            pde_config = pde.configure_delay(plb.pde.delay_ps)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        im_routes["pde_in"] = input_signal_for(plb.pde.input_net)

    # PLB outputs: everything produced here may be consumed outside; export in
    # deterministic order up to the output pin budget.
    output_pin_of_net: dict[str, str] = {}
    for net in plb.output_nets:
        index = len(output_pin_of_net)
        if index >= plb_params.plb_outputs:
            break
        pin = f"out{index}"
        output_pin_of_net[net] = pin
        im_routes[pin] = internal_signal_of_net[net]

    config = PLBConfig(le_configs=le_configs, pde_config=pde_config, im_config=IMConfig(routes=im_routes))
    return ConfiguredPLB(
        plb_name=plb.name,
        config=config,
        input_pin_of_net=input_pin_of_net,
        output_pin_of_net=output_pin_of_net,
        internal_signal_of_net=internal_signal_of_net,
    )


def generate_bitstream(
    design: MappedDesign,
    placement: Placement,
    params: ArchitectureParams,
) -> tuple[Bitstream, dict[str, ConfiguredPLB]]:
    """Produce the full fabric bitstream for a packed & placed design."""
    budget = BitstreamBudget.for_architecture(params)
    bitstream = Bitstream(budget)
    configured: dict[str, ConfiguredPLB] = {}

    for plb in design.plbs:
        configured_plb = configure_plb(plb, params)
        configured[plb.name] = configured_plb
        x, y = placement.site_of(plb.name)

        # Program a scratch PLB to obtain the exact bit layout.
        hardware = PLB(params.plb, name=plb.name)
        hardware.configure(configured_plb.config)
        bits: list[int] = []
        for le in hardware.les:
            bits.extend(le.config_vector())
        bits.extend(hardware.pde.config_vector())
        bits.extend(hardware.im.config_vector())
        bitstream.set_region(f"plb_{x}_{y}", bits)

    return bitstream, configured
