"""High-level convenience API.

These helpers wrap the most common end-to-end uses of the library in one call
each, so the examples and quick interactive experiments stay short:

* :func:`map_full_adder` -- run the paper's Figure 3 experiment for one style.
* :func:`reproduce_filling_ratios` -- the Section 5 headline numbers for both
  styles in one table.
* :func:`run_flow` -- run the full CAD flow on any styled circuit.
* :func:`run_sweep` -- run a (circuit × architecture × options) grid through
  the batch sweep engine: pluggable executor backends, content-addressed
  result caching, and incremental re-route from cached placements.
* :func:`simulate_circuit` -- push a token sequence through a QDI or
  micropipeline full adder (gate level or mapped) and return the results.

The same sweeps are available from the shell as ``repro-sweep``
(:mod:`repro.cli`); ``docs/sweep.md`` and ``docs/flow.md`` are the longer
walk-throughs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Iterable

from repro.cad.flow import CadFlow, FlowOptions, FlowResult
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder, reference_sum_carry
from repro.core.params import ArchitectureParams
from repro.sweep.runner import RetryPolicy, RunnerConfig, SweepReport, SweepRunner
from repro.sweep.spec import SweepSpec
from repro.sim.handshake import (
    FourPhaseBundledConsumer,
    FourPhaseBundledProducer,
    FourPhaseDualRailProducer,
    HandshakeHarness,
    PassiveDualRailConsumer,
)
from repro.sim.lesim import simulate_mapped_design
from repro.sim.netsim import GateLevelSimulator
from repro.styles.base import LogicStyle, StyledCircuit


def run_flow(
    circuit: StyledCircuit,
    architecture: ArchitectureParams | None = None,
    options: FlowOptions | None = None,
) -> FlowResult:
    """Run the complete CAD flow (map, pack, place, route, bitstream) once."""
    flow = CadFlow(architecture, options)
    return flow.run(circuit)


def map_full_adder(
    style: str = "qdi",
    architecture: ArchitectureParams | None = None,
    options: FlowOptions | None = None,
) -> FlowResult:
    """Reproduce the paper's full-adder mapping for one style.

    ``style`` accepts ``"qdi"`` / ``"dual-rail"`` / ``"1-of-4"`` /
    ``"micropipeline"`` / ``"bundled-data"``.
    """
    normalised = style.lower()
    if normalised in ("qdi", "dual-rail", "qdi-dual-rail"):
        circuit = qdi_full_adder()
    elif normalised in ("1-of-4", "qdi-1-of-4"):
        circuit = qdi_full_adder(encoding="1-of-4")
    elif normalised in ("micropipeline", "bundled-data", "bundled"):
        circuit = micropipeline_full_adder()
    else:
        raise ValueError(f"unknown style {style!r}")
    return run_flow(circuit, architecture, options)


def run_sweep(
    circuits: Iterable[str] | None = None,
    architectures: Iterable[ArchitectureParams] | ArchitectureParams | None = None,
    options: Iterable[FlowOptions] | FlowOptions | None = None,
    workers: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
    executor: str | None = None,
    placement_cache: bool = True,
    routing_cache: bool = False,
    artifact_dir: str | os.PathLike[str] | None = None,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.0,
    fail_fast: bool = False,
    fallback: Iterable[str] = (),
    kernel: str = "auto",
) -> SweepReport:
    """Run a (circuit × architecture × options) grid through the batch engine.

    Parameters
    ----------
    circuits:
        Registry names (see :func:`repro.circuits.registry.circuit_registry`);
        ``None`` sweeps the full registry.
    architectures, options:
        Grid axes; single values or iterables, defaulting to the reference
        architecture with default flow options.
    workers:
        Pool size for the parallel backends; without an explicit ``executor``,
        ``workers > 1`` selects the process backend and ``<= 1`` runs serial.
    cache_dir:
        Directory of the content-addressed result store.  Repeated sweeps are
        served from it, and successful placements are cached alongside the
        summaries so a routing-only option change re-routes without
        re-placing (the summary then carries ``placement_cache_hit``).
    executor:
        Backend name -- ``"serial"``, ``"thread"``, ``"process"`` or anything
        registered via :func:`repro.sweep.register_executor`.
    placement_cache:
        Set ``False`` to disable placement caching / incremental re-route
        while keeping the summary cache.
    routing_cache:
        Set ``True`` to additionally cache legal routed trees and warm-start
        PathFinder across channel-width and grid-size ladders (quality-gated
        but not bit-identical to cold routing; see ``docs/sweep.md``).
    artifact_dir:
        Directory of a stage-artifact store: each executed flow then
        checkpoints its stage boundaries there for bitstream re-rendering,
        lint audits and resumes (see ``docs/artifacts.md``).  Summaries and
        cache keys are unaffected.
    timeout:
        Per-point wall-clock budget in seconds; overruns record
        ``status="timeout"`` and are never cached (``docs/robustness.md``).
    retries:
        Total attempts per point for transient failures and timeouts
        (``1`` = no retries); maps to
        :attr:`repro.sweep.RetryPolicy.max_attempts`.
    backoff:
        Base delay in seconds of the deterministic exponential backoff
        between attempts; ``0`` retries immediately.
    fail_fast:
        Stop submitting after the first non-ok point; the rest of the grid
        records ``status="skipped"``.
    fallback:
        Opt-in executor degradation ladder (e.g. ``("thread", "serial")``)
        engaged after repeated worker-pool failures.
    kernel:
        Compute backend for every executed point -- ``"auto"`` (numpy when
        importable, else pure python), ``"python"`` or ``"numpy"``.
        Execution-side like ``artifact_dir``: both backends are bit-identical,
        so the choice never enters sweep keys or cached summaries; executed
        records report the resolved backend under ``"kernel"``.

    Returns
    -------
    SweepReport
        Per-point outcomes (:meth:`~repro.sweep.SweepReport.rows`,
        :meth:`~repro.sweep.SweepReport.summaries`) plus cache hit/miss
        counters (:meth:`~repro.sweep.SweepReport.stats`).
    """
    if circuits is None:
        spec = SweepSpec.full_registry(architectures, options)
    else:
        spec = SweepSpec.build(
            circuits,
            architectures if architectures is not None else ArchitectureParams(),
            options,
        )
    config = RunnerConfig.from_workers(workers, executor)
    config = replace(
        config,
        timeout_s=timeout,
        retry=RetryPolicy(max_attempts=max(1, int(retries)), backoff_s=backoff),
        fail_fast=fail_fast,
        fallback=tuple(fallback),
    )
    runner = SweepRunner(
        store=cache_dir,
        config=config,
        placement_cache=placement_cache,
        routing_cache=routing_cache,
        artifacts=str(artifact_dir) if artifact_dir is not None else None,
        kernel=kernel,
    )
    return runner.run(spec)


def reproduce_filling_ratios(
    architecture: ArchitectureParams | None = None,
    workers: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[dict[str, object]]:
    """The Section 5 experiment: filling ratios of both full adders.

    Returns one row per style with the measured filling ratio and the paper's
    reported value for comparison.  Runs through the sweep engine (serial by
    default, which is bit-identical to the single-flow path; pass ``workers``
    / ``cache_dir`` to parallelise or cache).
    """
    paper_values = {
        LogicStyle.MICROPIPELINE.value: 0.51,
        LogicStyle.QDI_DUAL_RAIL.value: 0.76,
    }
    report = run_sweep(
        circuits=("micropipeline_full_adder", "qdi_full_adder"),
        architectures=architecture if architecture is not None else ArchitectureParams(),
        options=FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False),
        workers=workers,
        cache_dir=cache_dir,
    )
    rows: list[dict[str, object]] = []
    for outcome in report.outcomes:
        if not outcome.ok or outcome.summary is None:
            raise RuntimeError(
                f"filling-ratio flow failed for {outcome.point.circuit!r}: {outcome.error}"
            )
        summary = outcome.summary
        style_name = summary["style"]
        rows.append(
            {
                "style": style_name,
                "measured_filling_ratio": summary.get("filling_ratio"),
                "paper_filling_ratio": paper_values.get(style_name),
                "les": summary["les"],
                "plbs": summary["plbs"],
                "pdes": summary["pdes"],
            }
        )
    return rows


@dataclass
class SimulationOutcome:
    """Result of :func:`simulate_circuit`."""

    circuit: str
    style: str
    inputs: list[tuple[int, int, int]]
    sums: list[int]
    carries: list[int]
    correct: bool
    simulated_time_ps: int


def simulate_circuit(
    style: str = "qdi",
    vectors: list[tuple[int, int, int]] | None = None,
    use_mapped: bool = False,
) -> SimulationOutcome:
    """Push full-adder operand triples through a simulated implementation.

    ``use_mapped=True`` simulates the LE-level mapped design (i.e. the circuit
    as configured on the fabric) instead of the gate-level netlist.
    """
    vectors = vectors or [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
    normalised = style.lower()

    if normalised.startswith("qdi") or normalised == "dual-rail":
        circuit = qdi_full_adder()
        if use_mapped:
            from repro.cad.techmap import template_map

            simulator = simulate_mapped_design(template_map(circuit))
        else:
            simulator = GateLevelSimulator(circuit.netlist)
        producers = [
            FourPhaseDualRailProducer(circuit.channel("a"), [v[0] for v in vectors], "ack"),
            FourPhaseDualRailProducer(circuit.channel("b"), [v[1] for v in vectors], "ack"),
            FourPhaseDualRailProducer(circuit.channel("cin"), [v[2] for v in vectors], "ack"),
        ]
        sum_consumer = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
        carry_consumer = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
        harness = HandshakeHarness(simulator, producers + [sum_consumer, carry_consumer])
        end_time = harness.run()
        sums, carries = sum_consumer.received, carry_consumer.received
    elif normalised in ("micropipeline", "bundled-data", "bundled"):
        circuit = micropipeline_full_adder()
        if use_mapped:
            from repro.cad.techmap import template_map

            simulator = simulate_mapped_design(template_map(circuit))
        else:
            simulator = GateLevelSimulator(circuit.netlist)
        input_channel = circuit.input_channels[0]
        output_channel = circuit.output_channels[0]
        encoded = [a | (b << 1) | (c << 2) for a, b, c in vectors]
        producer = FourPhaseBundledProducer(input_channel, encoded, input_channel.ack_wire)
        consumer = FourPhaseBundledConsumer(
            output_channel, output_channel.req_wire, output_channel.ack_wire
        )
        harness = HandshakeHarness(simulator, [producer, consumer])
        end_time = harness.run()
        sums = [value & 1 for value in consumer.received]
        carries = [(value >> 1) & 1 for value in consumer.received]
    else:
        raise ValueError(f"unknown style {style!r}")

    expected = [reference_sum_carry(*vector) for vector in vectors]
    correct = sums == [s for s, _ in expected] and carries == [c for _, c in expected]
    return SimulationOutcome(
        circuit=circuit.name,
        style=circuit.style.value,
        inputs=list(vectors),
        sums=sums,
        carries=carries,
        correct=correct,
        simulated_time_ps=end_time,
    )
