"""Baselines the paper positions itself against.

* :mod:`~repro.baselines.sync_fpga` -- a conventional synchronous LUT4 island
  FPGA (the "use a commercial FPGA" option of reference [3]): asynchronous
  netlists are mapped onto plain 4-input LUTs with no native C-element,
  validity or delay support, which is exactly the resource waste the paper's
  introduction cites as motivation.
* :mod:`~repro.baselines.priorart` -- abstract descriptors of the prior
  asynchronous FPGAs discussed in Section 1 (MONTAGE, PGA-STC, GALSA, STACC,
  PAPA) capturing which logic styles each supports.
* :mod:`~repro.baselines.compare` -- harnesses producing the comparison tables
  used by EXP-PRIOR and EXP-SYNC.
"""

from repro.baselines.sync_fpga import SyncFPGAParams, SyncMappingResult, map_to_sync_fpga
from repro.baselines.priorart import PriorArtFPGA, prior_art_fpgas, style_support_matrix
from repro.baselines.compare import compare_with_sync_baseline, prior_art_table

__all__ = [
    "SyncFPGAParams",
    "SyncMappingResult",
    "map_to_sync_fpga",
    "PriorArtFPGA",
    "prior_art_fpgas",
    "style_support_matrix",
    "compare_with_sync_baseline",
    "prior_art_table",
]
