"""Abstract models of the prior asynchronous FPGAs discussed in Section 1.

The paper motivates its architecture by noting that every earlier asynchronous
FPGA is tied to one design style: MONTAGE and PGA-STC build on a synchronous
fabric, GALSA and STACC are globally-asynchronous / locally-synchronous, and
PAPA is a fully asynchronous fabric specialised for pipelined QDI circuits.
The descriptors here capture that qualitative comparison (plus rough
per-style overhead factors) so EXP-PRIOR can regenerate the comparison table.

The overhead factors are coarse literature-derived estimates -- they only
support the qualitative claim (a style outside an architecture's sweet spot is
expensive or impossible), not absolute area numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.styles.base import LogicStyle


@dataclass(frozen=True)
class PriorArtFPGA:
    """One prior asynchronous-FPGA architecture.

    ``style_overhead`` maps a logic style to the estimated relative resource
    factor for implementing that style on the architecture (1.0 = native
    support); styles missing from the map are considered unsupported.
    """

    name: str
    year: int
    reference: str
    organisation: str
    base_fabric: str
    style_overhead: dict[LogicStyle, float] = field(default_factory=dict)
    notes: str = ""

    def supports(self, style: LogicStyle) -> bool:
        return style in self.style_overhead

    def overhead(self, style: LogicStyle) -> float | None:
        return self.style_overhead.get(style)


def prior_art_fpgas() -> list[PriorArtFPGA]:
    """The five prior architectures of Section 1 plus this paper's fabric."""
    return [
        PriorArtFPGA(
            name="MONTAGE",
            year=1994,
            reference="[4] Hauck et al., IEEE D&T 1994",
            organisation="University of Washington",
            base_fabric="synchronous island FPGA with arbiters",
            style_overhead={
                LogicStyle.MICROPIPELINE: 1.4,
                LogicStyle.QDI_DUAL_RAIL: 2.5,
            },
            notes="Timed/asynchronous interface circuits; no multi-rail support",
        ),
        PriorArtFPGA(
            name="PGA-STC",
            year=1995,
            reference="[5] Maheswaran, UC Davis MSc 1995",
            organisation="UC Davis",
            base_fabric="synchronous FPGA extended for self-timed circuits",
            style_overhead={
                LogicStyle.MICROPIPELINE: 1.3,
            },
            notes="Bundled-data self-timed blocks on a synchronous base",
        ),
        PriorArtFPGA(
            name="GALSA",
            year=1996,
            reference="[6] Gao, Edinburgh PhD 1996",
            organisation="University of Edinburgh",
            base_fabric="globally asynchronous, locally synchronous array",
            style_overhead={
                LogicStyle.MICROPIPELINE: 1.2,
            },
            notes="Asynchronous only between locally synchronous islands",
        ),
        PriorArtFPGA(
            name="STACC",
            year=1997,
            reference="[7] Payne, Edinburgh PhD 1997",
            organisation="University of Edinburgh",
            base_fabric="self-timed array, globally asynchronous / locally synchronous",
            style_overhead={
                LogicStyle.MICROPIPELINE: 1.2,
            },
            notes="Token-based timing cells around synchronous datapath blocks",
        ),
        PriorArtFPGA(
            name="PAPA",
            year=2003,
            reference="[8] Teifel & Manohar, FPL 2003",
            organisation="Cornell University",
            base_fabric="fully asynchronous pipelined array",
            style_overhead={
                LogicStyle.QDI_DUAL_RAIL: 1.0,
                LogicStyle.WCHB: 1.0,
            },
            notes="Optimised for fine-grain QDI pipelines only",
        ),
        PriorArtFPGA(
            name="Multi-style (this paper)",
            year=2005,
            reference="Huot et al., DATE 2005",
            organisation="TIMA Laboratory",
            base_fabric="island fabric of PLBs (LUT7-3 + LUT2-1 + PDE + IM)",
            style_overhead={
                LogicStyle.QDI_DUAL_RAIL: 1.0,
                LogicStyle.QDI_ONE_OF_FOUR: 1.0,
                LogicStyle.MICROPIPELINE: 1.0,
                LogicStyle.WCHB: 1.0,
            },
            notes="Style-independent: memory by LUT looping, validity LUT, programmable delay",
        ),
    ]


def style_support_matrix() -> dict[str, dict[str, bool]]:
    """Architecture name -> {style name -> supported} (EXP-PRIOR)."""
    matrix: dict[str, dict[str, bool]] = {}
    for fpga in prior_art_fpgas():
        matrix[fpga.name] = {style.value: fpga.supports(style) for style in LogicStyle}
    return matrix


def styles_supported_count() -> dict[str, int]:
    """How many of the four styles each architecture supports."""
    return {
        name: sum(1 for supported in row.values() if supported)
        for name, row in style_support_matrix().items()
    }
