"""Comparison harnesses backing EXP-PRIOR and EXP-SYNC.

Both functions return plain lists of row dictionaries so the benchmark
harness can print them as tables and the tests can assert on the shape of the
comparison (the paper's architecture supports every style; asynchronous logic
on the synchronous baseline wastes resources).
"""

from __future__ import annotations

from repro.baselines.priorart import prior_art_fpgas
from repro.baselines.sync_fpga import SyncFPGAParams, map_to_sync_fpga
from repro.cad.flow import CadFlow, FlowOptions
from repro.core.params import ArchitectureParams
from repro.styles.base import LogicStyle, StyledCircuit


def prior_art_table() -> list[dict[str, object]]:
    """The Section 1 comparison: one row per architecture."""
    rows: list[dict[str, object]] = []
    for fpga in prior_art_fpgas():
        row: dict[str, object] = {
            "architecture": fpga.name,
            "year": fpga.year,
            "base_fabric": fpga.base_fabric,
            "reference": fpga.reference,
        }
        for style in LogicStyle:
            overhead = fpga.overhead(style)
            row[style.value] = overhead if overhead is not None else "-"
        row["styles_supported"] = sum(1 for style in LogicStyle if fpga.supports(style))
        rows.append(row)
    return rows


def compare_with_sync_baseline(
    circuits: list[StyledCircuit],
    architecture: ArchitectureParams | None = None,
    sync_params: SyncFPGAParams | None = None,
) -> list[dict[str, object]]:
    """EXP-SYNC: the paper's fabric vs a synchronous LUT4 FPGA, per circuit.

    For every circuit the row reports the paper-architecture LE/PLB cost and
    filling ratio (via the template-mapping flow, without place & route for
    speed) next to the synchronous baseline's LUT/CLB cost and LUT-input
    utilisation.
    """
    architecture = architecture if architecture is not None else ArchitectureParams(width=10, height=10)
    sync_params = sync_params if sync_params is not None else SyncFPGAParams()
    flow = CadFlow(
        architecture,
        FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False),
    )

    rows: list[dict[str, object]] = []
    for circuit in circuits:
        result = flow.run(circuit)
        sync = map_to_sync_fpga(circuit.netlist, sync_params)
        rows.append(
            {
                "circuit": circuit.name,
                "style": circuit.style.value,
                "async_les": len(result.mapped.les),
                "async_plbs": len(result.mapped.plbs),
                "async_filling_ratio": round(result.filling.per_le, 4) if result.filling else None,
                "sync_luts": sync.luts_used,
                "sync_clbs": sync.clbs_used,
                "sync_lut_input_utilisation": round(sync.lut_input_utilisation, 4),
                "sync_wasted_flip_flops": sync.wasted_flip_flops,
                "lut_per_le_ratio": round(sync.luts_used / max(1, len(result.mapped.les)), 2),
            }
        )
    return rows
