"""Baseline: mapping asynchronous circuits onto a synchronous LUT4 FPGA.

Reference [3] of the paper (Ho et al., FPL 2002 -- the same research group)
showed that asynchronous circuits *can* be implemented on commercial LUT-based
FPGAs, but that most of the FPGA's resources are then wasted: C-elements cost
a whole LUT plus a feedback path, dual-rail logic doubles the LUT count,
completion detection costs more LUTs, and nothing uses the flip-flops or
carry chains the synchronous fabric spends area on.

:func:`map_to_sync_fpga` reproduces that observation quantitatively: it runs
the generic cone-based mapper with a 4-input budget over an asynchronous gate
netlist and reports LUT counts and utilisation, which EXP-SYNC compares with
the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cad.techmap import generic_map
from repro.core.params import LEParams, PLBParams
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class SyncFPGAParams:
    """A conventional synchronous island FPGA tile (VPR-style defaults)."""

    lut_inputs: int = 4
    luts_per_clb: int = 4
    flip_flops_per_clb: int = 4
    clb_inputs: int = 10
    clb_outputs: int = 4

    @property
    def lut_config_bits(self) -> int:
        return 1 << self.lut_inputs

    @property
    def clb_config_bits(self) -> int:
        # LUT bits + FF bypass bit per LUT + a small local routing mux per input.
        return self.luts_per_clb * (self.lut_config_bits + 1) + self.clb_inputs * 4


@dataclass
class SyncMappingResult:
    """Resource usage of an asynchronous netlist on the synchronous baseline."""

    circuit: str
    luts_used: int = 0
    feedback_luts: int = 0
    clbs_used: int = 0
    flip_flops_used: int = 0
    lut_input_utilisation: float = 0.0
    wasted_flip_flops: int = 0
    config_bits_used: int = 0
    notes: list[str] = field(default_factory=list)

    def as_row(self) -> dict[str, object]:
        return {
            "circuit": self.circuit,
            "luts": self.luts_used,
            "feedback_luts": self.feedback_luts,
            "clbs": self.clbs_used,
            "lut_input_utilisation": round(self.lut_input_utilisation, 4),
            "wasted_flip_flops": self.wasted_flip_flops,
            "config_bits": self.config_bits_used,
        }


def map_to_sync_fpga(
    netlist: Netlist,
    params: SyncFPGAParams | None = None,
) -> SyncMappingResult:
    """Map an asynchronous gate netlist onto the synchronous LUT4 baseline.

    The mapping reuses the generic cone-based mapper with the baseline's LUT
    input budget; every mapped function occupies one LUT (state-holding
    functions additionally consume the local feedback path the synchronous
    architecture never dedicates resources to).
    """
    params = params if params is not None else SyncFPGAParams()

    # Reuse the generic mapper with a LUT4 budget by posing as an architecture
    # whose LE is a single-output LUT4 and whose "PLB" is one CLB.
    pseudo_plb = PLBParams(
        les_per_plb=params.luts_per_clb,
        plb_inputs=params.clb_inputs,
        plb_outputs=params.clb_outputs,
        pde_taps=1,
        le=LEParams(
            lut_inputs=params.lut_inputs,
            lut_outputs=1,
            validity_lut_inputs=1,
            validity_lut_outputs=1,
        ),
    )
    design = generic_map(netlist, pseudo_plb, max_lut_inputs=params.lut_inputs)

    luts = len(design.les)
    feedback_luts = sum(1 for le in design.les if le.feedback_nets)
    lut_inputs_used = sum(len(le.lut_input_nets) for le in design.les)
    clbs = (luts + params.luts_per_clb - 1) // params.luts_per_clb

    result = SyncMappingResult(circuit=netlist.name)
    result.luts_used = luts
    result.feedback_luts = feedback_luts
    result.clbs_used = clbs
    result.flip_flops_used = 0  # asynchronous logic cannot use the clocked FFs
    result.wasted_flip_flops = clbs * params.flip_flops_per_clb
    result.lut_input_utilisation = (
        lut_inputs_used / (luts * params.lut_inputs) if luts else 0.0
    )
    result.config_bits_used = clbs * params.clb_config_bits
    # Matched delays have no programmable-delay support on the baseline: they
    # must be built from LUT chains, one LUT per delay quantum of ~1 LUT delay.
    delay_luts = 0
    for cell in netlist.iter_cells():
        if cell.type_name == "DELAY":
            delay_ps = int(cell.attributes.get("delay", cell.cell_type.delay))
            delay_luts += max(1, delay_ps // 150)
    if delay_luts:
        result.notes.append(
            f"{delay_luts} additional LUTs needed to emulate matched delays (no PDE)"
        )
        result.luts_used += delay_luts
        result.clbs_used = (result.luts_used + params.luts_per_clb - 1) // params.luts_per_clb
        result.wasted_flip_flops = result.clbs_used * params.flip_flops_per_clb
        result.config_bits_used = result.clbs_used * params.clb_config_bits
    return result
