"""Micropipeline (bundled-data) stage generation.

A micropipeline stage carries ordinary single-rail data accompanied by a
request wire; the timing assumption that the data is stable when the request
arrives is enforced with a *matched delay*, which on the paper's architecture
maps onto the PLB's programmable delay element (Section 3, Figure 1 and the
Figure 3a example).

The generated stage has the following structure (4-phase protocol):

* a combinational single-rail datapath computing the outputs;
* a ``DELAY`` cell producing ``req_delayed`` from the input request, with a
  delay larger than the worst-case datapath delay;
* a Muller C-element latch controller ``en = C(req_delayed, !out_ack)``;
* transparent output latches that hold the computed data while ``en`` is high
  (i.e. while the downstream stage is consuming it);
* ``in_ack = en`` back to the producer and ``out_req = en`` to the consumer.

This is a standard simple 4-phase bundled-data latch controller; its
handshake correctness is exercised by the simulation tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import BundledDataEncoding
from repro.logic.truthtable import TruthTable
from repro.netlist.builder import NetlistBuilder
from repro.styles.base import LogicStyle, StyledCircuit

#: Default matched delay (ps) used when the caller does not specify one.
DEFAULT_MATCHED_DELAY = 600


def _emit_datapath(
    builder: NetlistBuilder,
    outputs: Mapping[str, TruthTable],
    net_prefix: str = "dp_",
) -> dict[str, str]:
    """Emit naive SOP datapath logic for every output table.

    Each output is produced as a two-level OR-of-minterm-ANDs over the input
    wires; inverters are shared.  The technology mapper later re-absorbs this
    logic into LUTs, so gate-level structure quality is irrelevant -- only
    functional correctness matters.
    """
    inverted: dict[str, str] = {}

    def inverted_net(wire: str) -> str:
        if wire not in inverted:
            inverted[wire] = builder.inv(wire, out=f"{net_prefix}n_{wire}")
        return inverted[wire]

    produced: dict[str, str] = {}
    for output_name, table in outputs.items():
        minterm_nets: list[str] = []
        for row in table.minterms():
            literal_nets = []
            for position, wire in enumerate(table.inputs):
                if (row >> position) & 1:
                    literal_nets.append(wire)
                else:
                    literal_nets.append(inverted_net(wire))
            if len(literal_nets) == 1:
                minterm_nets.append(literal_nets[0])
            else:
                term = literal_nets[0]
                for literal in literal_nets[1:]:
                    term = builder.and2(term, literal)
                minterm_nets.append(term)
        if not minterm_nets:
            raise ValueError(f"output {output_name!r} is constant 0; not supported in a datapath")
        produced[output_name] = builder.or_tree(minterm_nets, out=f"{net_prefix}{output_name}")
    return produced


def micropipeline_stage(
    name: str,
    input_channel: Channel,
    output_channel: Channel,
    outputs: Mapping[str, TruthTable],
    matched_delay: int = DEFAULT_MATCHED_DELAY,
) -> StyledCircuit:
    """Generate a bundled-data pipeline stage computing *outputs*.

    Parameters
    ----------
    input_channel / output_channel:
        Bundled-data channels; the input channel's data wires are the free
        variables of the output truth tables, and the output channel's data
        wires must match the keys of *outputs* (in channel wire order).
    outputs:
        Output wire name → truth table over input wire names.
    matched_delay:
        Delay (in the simulator's time unit, ps) of the matched-delay element;
        must exceed the worst-case datapath delay.
    """
    if not isinstance(input_channel.encoding, BundledDataEncoding) or not isinstance(
        output_channel.encoding, BundledDataEncoding
    ):
        raise ValueError("micropipeline stages use bundled-data channels")

    expected_outputs = set(output_channel.data_wires())
    if set(outputs) != expected_outputs:
        raise ValueError(
            f"output tables {sorted(outputs)} do not match output channel wires "
            f"{sorted(expected_outputs)}"
        )

    builder = NetlistBuilder(name)

    for wire in input_channel.data_wires():
        builder.input(wire)
    in_req = builder.input(input_channel.req_wire)
    out_ack = builder.input(output_channel.ack_wire)

    for wire in output_channel.data_wires():
        builder.output(wire)
    in_ack = builder.output(input_channel.ack_wire)
    out_req = builder.output(output_channel.req_wire)

    # Datapath ---------------------------------------------------------
    datapath = _emit_datapath(builder, outputs)

    # Matched delay + latch controller ----------------------------------
    req_delayed = builder.gate("DELAY", [in_req], out="req_delayed", name="matched_delay")
    # Per-instance delay override so the simulator honours the requested margin.
    builder.netlist.cell("matched_delay").attributes["delay"] = int(matched_delay)
    builder.netlist.cell("matched_delay").attributes["matched_delay"] = int(matched_delay)

    n_out_ack = builder.inv(out_ack, out="n_out_ack")
    enable = builder.c2(req_delayed, n_out_ack, out="lc_en", name="latch_ctrl")
    n_enable = builder.inv(enable, out="lc_en_b")

    # Output latches: transparent while en == 0, holding while en == 1.
    for wire in output_channel.data_wires():
        builder.latch(datapath[wire], n_enable, out=wire, name=f"latch_{wire}")

    builder.buf(enable, out=in_ack, name="ack_driver")
    builder.buf(enable, out=out_req, name="req_driver")

    netlist = builder.build()
    circuit = StyledCircuit(
        name=name,
        style=LogicStyle.MICROPIPELINE,
        netlist=netlist,
        input_channels=[input_channel],
        output_channels=[output_channel],
        ack_nets={input_channel.name: in_ack, output_channel.name: output_channel.ack_wire},
        req_nets={input_channel.name: input_channel.req_wire, output_channel.name: out_req},
        uses_delay_element=True,
        metadata={
            "matched_delay": matched_delay,
            "latch_controller": "C2 + inverters",
            "datapath_tables": dict(outputs),
        },
    )
    return circuit


def micropipeline_full_adder_stage(
    name: str = "micropipeline_full_adder",
    matched_delay: int = DEFAULT_MATCHED_DELAY,
) -> StyledCircuit:
    """The paper's micropipeline full adder (Figure 3a).

    A 1-bit full adder with bundled-data inputs ``a``, ``b``, ``cin`` grouped
    in one 3-bit input channel ``abc`` and a 2-bit output channel ``sc``
    (sum, carry), 4-phase protocol, matched delay on the request path.
    """
    from repro.logic.functions import majority_table, xor_table

    input_channel = Channel("abc", 3, BundledDataEncoding())
    output_channel = Channel("sc", 2, BundledDataEncoding())

    in_wires = input_channel.data_wires()   # abc0, abc1, abc2
    out_wires = output_channel.data_wires()  # sc0 (sum), sc1 (carry)

    sum_table = xor_table(inputs=in_wires)
    carry_table = majority_table(inputs=in_wires)

    circuit = micropipeline_stage(
        name,
        input_channel=input_channel,
        output_channel=output_channel,
        outputs={out_wires[0]: sum_table, out_wires[1]: carry_table},
        matched_delay=matched_delay,
    )
    circuit.metadata["port_roles"] = {
        "a": in_wires[0],
        "b": in_wires[1],
        "cin": in_wires[2],
        "sum": out_wires[0],
        "cout": out_wires[1],
    }
    return circuit
