"""QDI (quasi-delay-insensitive) function-block generation.

The generator implements **DIMS** (Delay-Insensitive Minterm Synthesis): every
combination of input-channel values gets a Muller C-element (tree) that fires
when the corresponding code word is present on every input channel; each
output rail is the OR of the minterm signals that map to it.  Completion
detection over the outputs produces the acknowledge returned to the
environment, exactly as required by the 4-phase protocol the paper's example
uses (Section 4, Figure 3b).

DIMS is the most conservative QDI implementation style; it makes the
generated blocks straightforwardly hazard-free, which the simulation-based
tests verify.  The technology mapper later collapses the per-rail logic into
the LUT7-3 of the paper's logic element (the rail functions of a full adder
fit a single LUT7-3, which is what gives the high QDI filling ratio the paper
reports).
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

from repro.asynclogic.channels import Channel
from repro.asynclogic.completion import completion_detector
from repro.asynclogic.encodings import DualRailEncoding, OneOfNEncoding
from repro.netlist.builder import NetlistBuilder
from repro.styles.base import LogicStyle, StyledCircuit


def _channel_value_range(channel: Channel) -> range:
    return range(1 << channel.width_bits)


def _rails_for_value(channel: Channel, value: int) -> list[str]:
    """The wire names that are high when *channel* carries *value*."""
    encoded = channel.encode(value)
    return [wire for wire, level in encoded.items() if level == 1]


def dims_function_block(
    name: str,
    input_channels: Sequence[Channel],
    output_channels: Sequence[Channel],
    function: Callable[[Mapping[str, int]], Mapping[str, int]],
    style: LogicStyle = LogicStyle.QDI_DUAL_RAIL,
    ack_net: str = "ack",
) -> StyledCircuit:
    """Generate a DIMS QDI function block.

    Parameters
    ----------
    name:
        Netlist name.
    input_channels / output_channels:
        Channel specifications.  All channels must use a delay-insensitive
        encoding (dual-rail or 1-of-N).
    function:
        The single-rail reference function: maps a dict of input channel
        values to a dict of output channel values.
    style:
        Recorded on the result (dual-rail or 1-of-4).
    ack_net:
        Name of the primary output carrying the output-completion signal that
        acknowledges the inputs.

    Returns
    -------
    StyledCircuit
        The gate-level block, with ``ack_nets`` mapping every input channel to
        *ack_net*.
    """
    for channel in list(input_channels) + list(output_channels):
        if not channel.encoding.is_delay_insensitive:
            raise ValueError(
                f"channel {channel.name!r} uses {channel.encoding.name}, which is not "
                "delay-insensitive; QDI blocks need dual-rail or 1-of-N data"
            )

    builder = NetlistBuilder(name)

    for channel in input_channels:
        for wire in channel.data_wires():
            builder.input(wire)
    for channel in output_channels:
        for wire in channel.data_wires():
            builder.output(wire)
    builder.output(ack_net)

    # 1. Minterm C-elements: one per combination of input channel values.
    minterm_nets: dict[tuple[int, ...], str] = {}
    value_ranges = [_channel_value_range(channel) for channel in input_channels]
    for combination in itertools.product(*value_ranges):
        rails: list[str] = []
        for channel, value in zip(input_channels, combination):
            rails.extend(_rails_for_value(channel, value))
        label = "_".join(str(v) for v in combination)
        if len(rails) == 1:
            minterm_net = builder.buf(rails[0], out=f"m_{label}")
        else:
            minterm_net = builder.c_tree(rails, out=f"m_{label}")
        minterm_nets[combination] = minterm_net

    # 2. OR each output rail over the minterms that activate it.
    for out_channel in output_channels:
        rail_sources: dict[str, list[str]] = {wire: [] for wire in out_channel.data_wires()}
        for combination, minterm_net in minterm_nets.items():
            inputs = {
                channel.name: value for channel, value in zip(input_channels, combination)
            }
            outputs = function(inputs)
            if out_channel.name not in outputs:
                raise KeyError(
                    f"reference function did not produce a value for channel {out_channel.name!r}"
                )
            encoded = out_channel.encode(outputs[out_channel.name])
            for wire, level in encoded.items():
                if level == 1:
                    rail_sources[wire].append(minterm_net)
        for wire, sources in rail_sources.items():
            if not sources:
                # This rail is never asserted (constant-0 output rail); tie it
                # low through a buffer of a constant-0 minterm-free net is not
                # possible in a DI way -- instead leave it undriven only if it
                # is genuinely impossible, which would be a specification
                # error for complete functions.
                raise ValueError(
                    f"output rail {wire!r} of channel {out_channel.name!r} is never asserted; "
                    "the reference function does not exercise a complete code"
                )
            builder.or_tree(sources, out=wire)

    # 3. Completion detection of the outputs -> acknowledge to the environment.
    done_nets = []
    for out_channel in output_channels:
        done = completion_detector(builder, out_channel, prefix=f"{out_channel.name}_cd")
        done_nets.append(done)
    if len(done_nets) == 1:
        builder.buf(done_nets[0], out=ack_net)
    else:
        builder.c_tree(done_nets, out=ack_net)

    netlist = builder.build()
    circuit = StyledCircuit(
        name=name,
        style=style,
        netlist=netlist,
        input_channels=list(input_channels),
        output_channels=list(output_channels),
        ack_nets={channel.name: ack_net for channel in input_channels},
        uses_delay_element=False,
        metadata={"synthesis": "DIMS", "ack_net": ack_net, "reference_function": function},
    )
    return circuit


def qdi_full_adder_block(
    name: str = "qdi_full_adder",
    encoding: str = "dual-rail",
) -> StyledCircuit:
    """The paper's QDI full adder (Figure 3b).

    A 1-bit full adder with dual-rail inputs ``a``, ``b``, ``cin`` and
    dual-rail outputs ``sum``, ``cout``, using the 4-phase protocol.  With
    ``encoding="1-of-4"`` the two operand bits are instead grouped into a
    single 1-of-4 digit (the multi-rail variant the LE's auxiliary outputs
    support).
    """
    if encoding == "dual-rail":
        enc = DualRailEncoding()
        a = Channel("a", 1, enc)
        b = Channel("b", 1, enc)
        cin = Channel("cin", 1, enc)
        sum_out = Channel("sum", 1, enc)
        cout = Channel("cout", 1, enc)

        def adder(values: Mapping[str, int]) -> Mapping[str, int]:
            total = values["a"] + values["b"] + values["cin"]
            return {"sum": total & 1, "cout": (total >> 1) & 1}

        return dims_function_block(
            name,
            input_channels=[a, b, cin],
            output_channels=[sum_out, cout],
            function=adder,
            style=LogicStyle.QDI_DUAL_RAIL,
        )

    if encoding in ("1-of-4", "one-of-four"):
        # The two operand bits a and b are carried by one 1-of-4 digit.
        operands = Channel("ab", 2, OneOfNEncoding(4))
        cin = Channel("cin", 1, DualRailEncoding())
        sum_out = Channel("sum", 1, DualRailEncoding())
        cout = Channel("cout", 1, DualRailEncoding())

        def adder_1of4(values: Mapping[str, int]) -> Mapping[str, int]:
            a_bit = values["ab"] & 1
            b_bit = (values["ab"] >> 1) & 1
            total = a_bit + b_bit + values["cin"]
            return {"sum": total & 1, "cout": (total >> 1) & 1}

        return dims_function_block(
            name,
            input_channels=[operands, cin],
            output_channels=[sum_out, cout],
            function=adder_1of4,
            style=LogicStyle.QDI_ONE_OF_FOUR,
        )

    raise ValueError(f"unsupported encoding {encoding!r} for the QDI full adder")
