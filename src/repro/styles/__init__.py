"""Logic-style circuit generators.

The whole point of the paper's architecture is to host *multiple* asynchronous
logic styles.  This package generates gate-level netlists for a Boolean
function in each supported style, all sharing the channel conventions of
:mod:`repro.asynclogic`:

* :mod:`~repro.styles.qdi` -- quasi-delay-insensitive blocks using DIMS
  (DI minterm synthesis): dual-rail or 1-of-N encoded data, 4-phase protocol,
  completion detection for acknowledge generation.
* :mod:`~repro.styles.micropipeline` -- bundled-data stages: single-rail
  datapath, matched delay (mapped onto the PLB's programmable delay element),
  C-element latch controller and transparent output latches.
* :mod:`~repro.styles.wchb` -- weak-conditioned half-buffer pipeline stages
  used for FIFO/ring throughput experiments.
* :mod:`~repro.styles.base` -- the :class:`LogicStyle` enumeration,
  :class:`StyledCircuit` (the common result type) and the style registry.
"""

from repro.styles.base import LogicStyle, StyleInfo, StyledCircuit, style_info, available_styles
from repro.styles.qdi import dims_function_block, qdi_full_adder_block
from repro.styles.micropipeline import micropipeline_stage, micropipeline_full_adder_stage
from repro.styles.wchb import wchb_buffer_stage, wchb_pipeline

__all__ = [
    "LogicStyle",
    "StyleInfo",
    "StyledCircuit",
    "style_info",
    "available_styles",
    "dims_function_block",
    "qdi_full_adder_block",
    "micropipeline_stage",
    "micropipeline_full_adder_stage",
    "wchb_buffer_stage",
    "wchb_pipeline",
]
