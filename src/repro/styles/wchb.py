"""Weak-conditioned half-buffer (WCHB) pipeline stages.

WCHB is the canonical QDI pipeline template: each stage stores one data token
(or one spacer) in a pair of Muller C-elements per bit.  The stages here are
used by the throughput-extension experiments (rings and FIFOs pushed through
the CAD flow and simulated on the fabric model).

Stage structure for one dual-rail bit::

    en     = INV(ack_from_next)
    out_t  = C2(in_t, en)
    out_f  = C2(in_f, en)
    ack_to_prev = OR(out_t, out_f)

The output C-elements rise only when the next stage is empty (``en`` high) and
fall only once the predecessor has removed its data *and* the successor has
acknowledged -- exactly the weak conditions of the template.
"""

from __future__ import annotations

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import DualRailEncoding
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist, PortDirection
from repro.styles.base import LogicStyle, StyledCircuit


def wchb_buffer_stage(
    name: str,
    input_channel: Channel,
    output_channel: Channel,
) -> StyledCircuit:
    """One WCHB buffer stage copying *input_channel* to *output_channel*.

    Both channels must be dual-rail and have the same width.  The stage's
    interface nets follow the channel conventions: the acknowledge it produces
    for the predecessor is ``<input>_ack`` and the acknowledge it consumes
    from the successor is ``<output>_ack``.
    """
    if input_channel.width_bits != output_channel.width_bits:
        raise ValueError("WCHB stage input and output widths must match")
    for channel in (input_channel, output_channel):
        if not isinstance(channel.encoding, DualRailEncoding):
            raise ValueError("WCHB stages are generated for dual-rail channels")

    builder = NetlistBuilder(name)

    in_wires = input_channel.data_wires()
    out_wires = output_channel.data_wires()
    for wire in in_wires:
        builder.input(wire)
    out_ack = builder.input(output_channel.ack_wire)
    for wire in out_wires:
        builder.output(wire)
    in_ack = builder.output(input_channel.ack_wire)

    enable = builder.inv(out_ack, out="en")

    for in_wire, out_wire in zip(in_wires, out_wires):
        builder.c2(in_wire, enable, out=out_wire, name=f"c_{out_wire}")

    # Completion of the stored token acknowledges the predecessor.
    per_bit_valid = []
    for digit_index in range(output_channel.digits):
        rails = output_channel.digit_wires(digit_index)
        per_bit_valid.append(builder.or2(rails[0], rails[1], out=f"v{digit_index}"))
    if len(per_bit_valid) == 1:
        builder.buf(per_bit_valid[0], out=in_ack)
    else:
        builder.c_tree(per_bit_valid, out=in_ack)

    netlist = builder.build()
    return StyledCircuit(
        name=name,
        style=LogicStyle.WCHB,
        netlist=netlist,
        input_channels=[input_channel],
        output_channels=[output_channel],
        ack_nets={input_channel.name: in_ack, output_channel.name: output_channel.ack_wire},
        uses_delay_element=False,
        metadata={"template": "WCHB"},
    )


def wchb_pipeline(
    name: str,
    stages: int,
    width_bits: int = 1,
) -> StyledCircuit:
    """A linear FIFO of *stages* WCHB buffers, ``width_bits`` wide.

    The pipeline's external interface is the first stage's input channel
    (named ``in``) and the last stage's output channel (named ``out``); the
    internal channels are named ``s0``, ``s1``, ...
    """
    if stages < 1:
        raise ValueError("a WCHB pipeline needs at least one stage")

    encoding = DualRailEncoding()
    channels = [Channel("in", width_bits, encoding)]
    for index in range(stages - 1):
        channels.append(Channel(f"s{index}", width_bits, encoding))
    channels.append(Channel("out", width_bits, encoding))

    merged = Netlist(name)
    for wire in channels[0].data_wires():
        merged.add_port(wire, PortDirection.INPUT)
    merged.add_port(channels[-1].ack_wire, PortDirection.INPUT)
    for wire in channels[-1].data_wires():
        merged.add_port(wire, PortDirection.OUTPUT)
    merged.add_port(channels[0].ack_wire, PortDirection.OUTPUT)

    for index in range(stages):
        stage = wchb_buffer_stage(f"{name}_st{index}", channels[index], channels[index + 1])
        interface = set(channels[index].data_wires()) | set(channels[index + 1].data_wires())
        interface.add(channels[index].ack_wire)
        interface.add(channels[index + 1].ack_wire)
        rename = {
            net_name: f"st{index}.{net_name}"
            for net_name in stage.netlist.nets
            if net_name not in interface
        }
        for cell in stage.netlist.iter_cells():
            connections = {
                pin: rename.get(net_name, net_name) for pin, net_name in cell.connections.items()
            }
            merged.add_cell(
                f"st{index}.{cell.name}", cell.cell_type, connections, **dict(cell.attributes)
            )

    return StyledCircuit(
        name=name,
        style=LogicStyle.WCHB,
        netlist=merged,
        input_channels=[channels[0]],
        output_channels=[channels[-1]],
        ack_nets={channels[0].name: channels[0].ack_wire, channels[-1].name: channels[-1].ack_wire},
        uses_delay_element=False,
        metadata={"stages": stages, "template": "WCHB"},
    )
