"""Common definitions shared by all style generators.

:class:`StyledCircuit` is the value every generator returns: the gate-level
netlist plus everything the CAD flow and the test benches need to know about
its interface (channels, acknowledge nets, style, whether a programmable
delay element is required).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import (
    BundledDataEncoding,
    DataEncoding,
    DualRailEncoding,
    OneOfNEncoding,
)
from repro.asynclogic.protocols import FourPhaseProtocol, Protocol, TimingClass
from repro.netlist.netlist import Netlist


class LogicStyle(enum.Enum):
    """The asynchronous logic styles supported by the reproduction."""

    QDI_DUAL_RAIL = "qdi-dual-rail"
    QDI_ONE_OF_FOUR = "qdi-1-of-4"
    MICROPIPELINE = "micropipeline"
    WCHB = "wchb"

    @classmethod
    def from_name(cls, name: str) -> "LogicStyle":
        lowered = name.lower().replace("_", "-")
        aliases = {
            "qdi": cls.QDI_DUAL_RAIL,
            "qdi-dual-rail": cls.QDI_DUAL_RAIL,
            "dual-rail": cls.QDI_DUAL_RAIL,
            "qdi-1-of-4": cls.QDI_ONE_OF_FOUR,
            "1-of-4": cls.QDI_ONE_OF_FOUR,
            "micropipeline": cls.MICROPIPELINE,
            "bundled-data": cls.MICROPIPELINE,
            "bundled": cls.MICROPIPELINE,
            "wchb": cls.WCHB,
        }
        if lowered in aliases:
            return aliases[lowered]
        raise KeyError(f"unknown logic style {name!r}")


@dataclass(frozen=True)
class StyleInfo:
    """Static properties of a logic style."""

    style: LogicStyle
    timing_class: TimingClass
    protocol: Protocol
    default_encoding: DataEncoding
    uses_delay_element: bool
    description: str


_STYLE_INFO: dict[LogicStyle, StyleInfo] = {
    LogicStyle.QDI_DUAL_RAIL: StyleInfo(
        style=LogicStyle.QDI_DUAL_RAIL,
        timing_class=TimingClass.QDI,
        protocol=FourPhaseProtocol,
        default_encoding=DualRailEncoding(),
        uses_delay_element=False,
        description="Quasi-delay-insensitive logic, dual-rail (1-of-2) data, 4-phase protocol",
    ),
    LogicStyle.QDI_ONE_OF_FOUR: StyleInfo(
        style=LogicStyle.QDI_ONE_OF_FOUR,
        timing_class=TimingClass.QDI,
        protocol=FourPhaseProtocol,
        default_encoding=OneOfNEncoding(4),
        uses_delay_element=False,
        description="Quasi-delay-insensitive logic, 1-of-4 (multi-rail) data, 4-phase protocol",
    ),
    LogicStyle.MICROPIPELINE: StyleInfo(
        style=LogicStyle.MICROPIPELINE,
        timing_class=TimingClass.BUNDLED,
        protocol=FourPhaseProtocol,
        default_encoding=BundledDataEncoding(),
        uses_delay_element=True,
        description="Micropipeline / bundled-data logic with matched delays, 4-phase protocol",
    ),
    LogicStyle.WCHB: StyleInfo(
        style=LogicStyle.WCHB,
        timing_class=TimingClass.QDI,
        protocol=FourPhaseProtocol,
        default_encoding=DualRailEncoding(),
        uses_delay_element=False,
        description="Weak-conditioned half-buffer QDI pipeline stages",
    ),
}


def style_info(style: LogicStyle | str) -> StyleInfo:
    """Look up the static properties of a style."""
    if isinstance(style, str):
        style = LogicStyle.from_name(style)
    return _STYLE_INFO[style]


def available_styles() -> list[StyleInfo]:
    """All supported styles, in declaration order."""
    return [_STYLE_INFO[style] for style in LogicStyle]


@dataclass
class StyledCircuit:
    """A gate-level circuit generated in a particular logic style.

    Attributes
    ----------
    name:
        Circuit name (also the netlist name).
    style:
        The logic style it was generated in.
    netlist:
        The gate-level netlist.
    input_channels / output_channels:
        Channel specifications of the data interface.
    ack_nets:
        Mapping from channel name to the net carrying its acknowledge /
        completion signal (circuit output for input channels, circuit input
        for output channels of pipeline stages).
    req_nets:
        Mapping from channel name to its request net, for bundled-data
        channels only.
    uses_delay_element:
        True when the circuit instantiates matched-delay (``DELAY``) cells
        that must map onto programmable delay elements.
    metadata:
        Free-form extra information used by reports (e.g. the reference
        function evaluated by the block).
    """

    name: str
    style: LogicStyle
    netlist: Netlist
    input_channels: list[Channel] = field(default_factory=list)
    output_channels: list[Channel] = field(default_factory=list)
    ack_nets: dict[str, str] = field(default_factory=dict)
    req_nets: dict[str, str] = field(default_factory=dict)
    uses_delay_element: bool = False
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def info(self) -> StyleInfo:
        return style_info(self.style)

    def channel(self, name: str) -> Channel:
        for channel in self.input_channels + self.output_channels:
            if channel.name == name:
                return channel
        raise KeyError(f"no channel named {name!r} in circuit {self.name!r}")

    def summary(self) -> dict[str, object]:
        stats = self.netlist.stats()
        return {
            "name": self.name,
            "style": self.style.value,
            "cells": stats["cells"],
            "nets": stats["nets"],
            "c_elements": sum(
                count for type_name, count in stats["histogram"].items() if type_name.startswith("C")
            ),
            "latches": stats["histogram"].get("LATCH", 0),
            "delay_elements": stats["histogram"].get("DELAY", 0),
            "uses_delay_element": self.uses_delay_element,
        }
