"""Tokens: the unit of data exchanged with simulated asynchronous circuits.

A :class:`Token` is an integer payload plus bookkeeping time stamps filled in
by the handshake test benches (when the producer started driving it, when the
consumer acknowledged it).  The throughput/latency numbers of the pipeline
experiments are computed from these stamps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Token:
    """One data item flowing through an asynchronous channel."""

    value: int
    issued_at: int | None = None
    accepted_at: int | None = None
    completed_at: int | None = None

    @property
    def latency(self) -> int | None:
        """Time from issue to completion (acknowledge release), if known."""
        if self.issued_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Token(value={self.value}, issued_at={self.issued_at}, "
            f"accepted_at={self.accepted_at}, completed_at={self.completed_at})"
        )


def throughput(tokens: list[Token]) -> float | None:
    """Average tokens per time unit over the completed tokens, if computable."""
    completed = [tok for tok in tokens if tok.completed_at is not None]
    if len(completed) < 2:
        return None
    start = min(tok.completed_at for tok in completed)
    end = max(tok.completed_at for tok in completed)
    if end == start:
        return None
    return (len(completed) - 1) / (end - start)


def average_latency(tokens: list[Token]) -> float | None:
    """Mean issue-to-completion latency over tokens where it is known."""
    latencies = [tok.latency for tok in tokens if tok.latency is not None]
    if not latencies:
        return None
    return sum(latencies) / len(latencies)
