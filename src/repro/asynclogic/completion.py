"""Completion-detection generators.

For delay-insensitive codes, the receiver must detect that *every* digit of a
word carries a complete code word (and, for the return-to-zero phase, that
every digit has returned to neutral).  The classic construction is an OR gate
per digit followed by a Muller C-element tree; the paper's LE supports the
per-digit OR directly with the LUT2-1 attached to the multi-output LUT.

The functions here build those detectors as gate-level netlist fragments using
:class:`~repro.netlist.builder.NetlistBuilder`, and also expose the underlying
Boolean functions for use by the LUT mapper.
"""

from __future__ import annotations

from typing import Sequence

from repro.asynclogic.channels import Channel
from repro.logic.functions import or_table
from repro.logic.truthtable import TruthTable
from repro.netlist.builder import NetlistBuilder


def dual_rail_validity(false_rail: str = "d_f", true_rail: str = "d_t") -> TruthTable:
    """Validity function of one dual-rail digit: ``d_f | d_t``.

    This is exactly the function the paper dedicates the LE's LUT2-1 to.
    """
    return or_table(inputs=(false_rail, true_rail))


def one_of_n_validity(rail_names: Sequence[str]) -> TruthTable:
    """Validity function of one 1-of-N digit: OR of all rails."""
    if len(rail_names) < 2:
        raise ValueError("a 1-of-N digit has at least two rails")
    return or_table(inputs=tuple(rail_names))


def digit_validity_gate(builder: NetlistBuilder, rails: Sequence[str], out: str | None = None) -> str:
    """Emit the per-digit OR gate into *builder* and return its output net."""
    rails = list(rails)
    if len(rails) == 1:
        return builder.buf(rails[0], out=out)
    return builder.or_tree(rails, out=out)


def completion_detector(
    builder: NetlistBuilder,
    channel: Channel,
    out: str | None = None,
    prefix: str | None = None,
) -> str:
    """Build a full completion detector for *channel* inside *builder*.

    The detector ORs the rails of each digit and combines the per-digit
    validity signals with a C-element tree; its output is high when the whole
    word is valid and low when the whole word is neutral (the behaviour needed
    by 4-phase QDI acknowledgement generation).

    Returns the name of the completion output net.
    """
    if not channel.encoding.is_delay_insensitive:
        raise ValueError(
            f"completion detection is undefined for non-DI encoding {channel.encoding.name!r}"
        )
    prefix = prefix if prefix is not None else f"{channel.name}_cd"
    digit_valid_nets: list[str] = []
    for digit_index in range(channel.digits):
        rails = channel.digit_wires(digit_index)
        digit_out = builder.net(f"{prefix}_v{digit_index}")
        digit_validity_gate(builder, rails, out=digit_out)
        digit_valid_nets.append(digit_out)

    if len(digit_valid_nets) == 1:
        if out is not None:
            return builder.buf(digit_valid_nets[0], out=out)
        return digit_valid_nets[0]
    target = out if out is not None else builder.net(f"{prefix}_done")
    return builder.c_tree(digit_valid_nets, out=target)


def completion_tree_depth(digits: int) -> int:
    """Depth (in C-element levels) of a balanced completion tree over *digits*."""
    if digits < 1:
        raise ValueError("digits must be positive")
    depth = 0
    width = digits
    while width > 1:
        width = (width + 1) // 2
        depth += 1
    return depth


def completion_cost(channel: Channel) -> dict[str, int]:
    """Gate-count estimate of a completion detector for *channel*.

    Used by the baselines' area model when comparing against FPGAs without
    native validity support.
    """
    digits = channel.digits
    rails = channel.encoding.rails_per_digit
    or_gates = digits * max(rails - 1, 0)
    c_elements = max(digits - 1, 0)
    return {
        "or_gates": or_gates,
        "c_elements": c_elements,
        "tree_depth": completion_tree_depth(digits) if digits else 0,
    }
