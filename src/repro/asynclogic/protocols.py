"""Handshake protocols and timing-assumption classes.

Asynchronous modules communicate through request/acknowledge handshakes
(Section 2 of the paper).  Two families are modelled:

* **4-phase (return-to-zero)**: request and data rise, acknowledge rises,
  request and data return to neutral, acknowledge falls.  Both full adders of
  the paper's example use this protocol.
* **2-phase (transition signalling)**: every transition of request or
  acknowledge is an event; no return-to-zero phase.

The protocol objects describe the phases abstractly; the handshake test
benches in :mod:`repro.sim.handshake` execute them against simulated circuits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TimingClass(enum.Enum):
    """Timing-assumption classes discussed in Section 2 of the paper."""

    DI = "delay-insensitive"
    QDI = "quasi-delay-insensitive"
    SDI = "speed-independent"
    BUNDLED = "bundled-data / micropipeline"

    @property
    def requires_matched_delay(self) -> bool:
        """True if the class relies on a matched (programmable) delay element."""
        return self is TimingClass.BUNDLED

    @property
    def requires_isochronic_forks(self) -> bool:
        """True if correctness rests on the isochronic-fork assumption."""
        return self is TimingClass.QDI


class Phase(enum.Enum):
    """Logical phases of one handshake cycle."""

    IDLE = "idle"
    DATA_VALID = "data-valid"
    ACK_ASSERTED = "ack-asserted"
    RETURN_TO_ZERO = "return-to-zero"
    ACK_RELEASED = "ack-released"


@dataclass(frozen=True)
class Protocol:
    """An abstract handshake protocol.

    Attributes
    ----------
    name:
        Short identifier (``"four-phase"`` / ``"two-phase"``).
    phases_per_cycle:
        Number of signalling phases per transferred data item (4 or 2).
    return_to_zero:
        Whether data/request must return to a neutral state between items.
    """

    name: str
    phases_per_cycle: int
    return_to_zero: bool

    def handshake_sequence(self) -> tuple[Phase, ...]:
        """The ordered phases of one complete handshake cycle."""
        if self.return_to_zero:
            return (
                Phase.DATA_VALID,
                Phase.ACK_ASSERTED,
                Phase.RETURN_TO_ZERO,
                Phase.ACK_RELEASED,
            )
        return (Phase.DATA_VALID, Phase.ACK_ASSERTED)

    def cycles_for_tokens(self, tokens: int) -> int:
        """Number of signalling phases needed to transfer *tokens* items."""
        return tokens * self.phases_per_cycle


#: The 4-phase return-to-zero protocol used by both examples in the paper.
FourPhaseProtocol = Protocol(name="four-phase", phases_per_cycle=4, return_to_zero=True)

#: The 2-phase (transition-signalling) protocol.
TwoPhaseProtocol = Protocol(name="two-phase", phases_per_cycle=2, return_to_zero=False)

_PROTOCOLS = {
    "four-phase": FourPhaseProtocol,
    "4-phase": FourPhaseProtocol,
    "4ph": FourPhaseProtocol,
    "two-phase": TwoPhaseProtocol,
    "2-phase": TwoPhaseProtocol,
    "2ph": TwoPhaseProtocol,
}


def protocol_by_name(name: str) -> Protocol:
    """Look a protocol up by any of its accepted aliases."""
    try:
        return _PROTOCOLS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(set(_PROTOCOLS))}"
        ) from None
