"""Behavioural Muller C-element models.

The Muller C-element is the fundamental state-holding component of
asynchronous logic (Section 3 of the paper points out that the PLB's
interconnection matrix exists precisely so C-elements can be built by looping
LUT outputs back).  These small state machines are used by the handshake test
benches and by unit tests as golden references for the LUT implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.logic.functions import c_element_table, generalized_c_table
from repro.logic.truthtable import TruthTable


@dataclass
class CElement:
    """A symmetric Muller C-element with *arity* inputs.

    The output rises when all inputs are 1, falls when all inputs are 0 and
    holds otherwise.
    """

    arity: int = 2
    output: int = 0

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise ValueError("a C-element needs at least two inputs")

    def step(self, inputs: Sequence[int]) -> int:
        """Apply one set of input values and return the (possibly new) output."""
        if len(inputs) != self.arity:
            raise ValueError(f"expected {self.arity} inputs, got {len(inputs)}")
        if all(inputs):
            self.output = 1
        elif not any(inputs):
            self.output = 0
        return self.output

    def reset(self, value: int = 0) -> None:
        self.output = 1 if value else 0

    def next_state_table(self) -> TruthTable:
        """The next-state truth table (matches the ``C<arity>`` library cell)."""
        return c_element_table(tuple(f"a{i}" for i in range(self.arity)))


@dataclass
class AsymmetricCElement:
    """A generalised C-element with separate rising ("plus") and falling
    ("minus") input sets.

    Inputs listed in both sets behave symmetrically.  This is the component
    used by many 4-phase latch controllers.
    """

    plus: tuple[str, ...]
    minus: tuple[str, ...]
    output: int = 0
    _names: tuple[str, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        names: list[str] = []
        for name in tuple(self.plus) + tuple(self.minus):
            if name not in names:
                names.append(name)
        if not names:
            raise ValueError("an asymmetric C-element needs at least one input")
        self._names = tuple(names)

    @property
    def input_names(self) -> tuple[str, ...]:
        return self._names

    def step(self, **inputs: int) -> int:
        missing = [name for name in self._names if name not in inputs]
        if missing:
            raise ValueError(f"missing inputs {missing}")
        if all(inputs[name] for name in self.plus):
            self.output = 1
        elif not any(inputs[name] for name in self.minus):
            self.output = 0
        return self.output

    def reset(self, value: int = 0) -> None:
        self.output = 1 if value else 0

    def next_state_table(self) -> TruthTable:
        return generalized_c_table(self.plus, self.minus)


def c_element_lut_config(arity: int = 2) -> TruthTable:
    """The LUT configuration realising a C-element with looped feedback.

    The returned table has ``arity + 1`` inputs; the last one is the feedback
    input that the mapper connects to the LUT's own output through the PLB's
    interconnection matrix.  This is the construction Section 3 of the paper
    describes for implementing memory elements on the fabric.
    """
    return c_element_table(tuple(f"a{i}" for i in range(arity)))
