"""Data encodings for asynchronous channels.

The paper stresses that the architecture must support several data encodings
(dual-rail, 1-of-N, bundled data).  Each encoding here knows how to:

* translate an integer value into the wire values of one *digit* (a group of
  rails), and back;
* produce the *neutral* (spacer) wire state used by return-to-zero protocols;
* evaluate its validity predicate -- the function the LE's LUT2-1 (or an OR of
  rails) computes to detect that a digit carries data.

Multi-digit words are handled by :meth:`DataEncoding.encode_word` /
:meth:`DataEncoding.decode_word`, which split an integer into digits of
``bits_per_digit`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class EncodingError(ValueError):
    """Raised when wire values do not form a legal code word."""


@dataclass(frozen=True)
class DataEncoding:
    """Base class for channel data encodings.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"dual-rail"``.
    rails_per_digit:
        Number of wires in one digit group.
    bits_per_digit:
        Number of binary bits one digit carries.
    is_delay_insensitive:
        True when validity is encoded on the data wires themselves (dual-rail,
        1-of-N); false for bundled data, which needs a separate request wire
        and a matched delay.
    """

    name: str
    rails_per_digit: int
    bits_per_digit: int
    is_delay_insensitive: bool

    # -- single digit ----------------------------------------------------
    def encode_digit(self, value: int) -> tuple[int, ...]:
        raise NotImplementedError

    def decode_digit(self, rails: Sequence[int]) -> int | None:
        """Decode one digit; returns ``None`` for the neutral (spacer) state."""
        raise NotImplementedError

    def neutral_digit(self) -> tuple[int, ...]:
        """The all-neutral (spacer) wire state of one digit."""
        return tuple([0] * self.rails_per_digit)

    def digit_is_valid(self, rails: Sequence[int]) -> bool:
        """Validity predicate of one digit (complete code word present)."""
        raise NotImplementedError

    def digit_is_neutral(self, rails: Sequence[int]) -> bool:
        return tuple(rails) == self.neutral_digit()

    def rail_names(self, digit_name: str) -> tuple[str, ...]:
        """Conventional wire names of one digit, e.g. ``a_0``, ``a_1``."""
        return tuple(f"{digit_name}_{index}" for index in range(self.rails_per_digit))

    # -- whole words ------------------------------------------------------
    def digits_for_bits(self, width_bits: int) -> int:
        """Number of digits needed to carry *width_bits* binary bits."""
        return (width_bits + self.bits_per_digit - 1) // self.bits_per_digit

    def encode_word(self, value: int, width_bits: int) -> tuple[int, ...]:
        """Encode *value* (non-negative) over ``digits_for_bits(width_bits)`` digits."""
        if value < 0 or value >= (1 << width_bits):
            raise EncodingError(f"value {value} does not fit in {width_bits} bits")
        rails: list[int] = []
        mask = (1 << self.bits_per_digit) - 1
        for digit_index in range(self.digits_for_bits(width_bits)):
            digit_value = (value >> (digit_index * self.bits_per_digit)) & mask
            rails.extend(self.encode_digit(digit_value))
        return tuple(rails)

    def decode_word(self, rails: Sequence[int], width_bits: int) -> int | None:
        """Decode a word; ``None`` if any digit is neutral (no complete data)."""
        digits = self.digits_for_bits(width_bits)
        expected = digits * self.rails_per_digit
        if len(rails) != expected:
            raise EncodingError(f"expected {expected} rails, got {len(rails)}")
        value = 0
        for digit_index in range(digits):
            start = digit_index * self.rails_per_digit
            digit_rails = rails[start : start + self.rails_per_digit]
            digit_value = self.decode_digit(digit_rails)
            if digit_value is None:
                return None
            value |= digit_value << (digit_index * self.bits_per_digit)
        return value

    def neutral_word(self, width_bits: int) -> tuple[int, ...]:
        return tuple([0] * (self.digits_for_bits(width_bits) * self.rails_per_digit))

    def word_is_valid(self, rails: Sequence[int], width_bits: int) -> bool:
        """True when every digit of the word is a complete code word."""
        digits = self.digits_for_bits(width_bits)
        for digit_index in range(digits):
            start = digit_index * self.rails_per_digit
            if not self.digit_is_valid(rails[start : start + self.rails_per_digit]):
                return False
        return True


class OneOfNEncoding(DataEncoding):
    """1-of-N (one-hot) encoding: exactly one of N rails is high per digit."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("1-of-N encoding requires N >= 2")
        bits = (n - 1).bit_length()
        if (1 << bits) != n:
            # Non-power-of-two radices are legal (e.g. 1-of-3); they carry
            # floor(log2(N)) full binary bits when used for binary data.
            bits = n.bit_length() - 1
        super().__init__(
            name=f"1-of-{n}",
            rails_per_digit=n,
            bits_per_digit=bits,
            is_delay_insensitive=True,
        )

    @property
    def n(self) -> int:
        return self.rails_per_digit

    def encode_digit(self, value: int) -> tuple[int, ...]:
        if not 0 <= value < self.n:
            raise EncodingError(f"digit value {value} out of range for {self.name}")
        return tuple(1 if index == value else 0 for index in range(self.n))

    def decode_digit(self, rails: Sequence[int]) -> int | None:
        if len(rails) != self.n:
            raise EncodingError(f"{self.name} digit needs {self.n} rails, got {len(rails)}")
        ones = [index for index, rail in enumerate(rails) if rail]
        if not ones:
            return None
        if len(ones) > 1:
            raise EncodingError(f"illegal {self.name} code word {tuple(rails)}: multiple rails high")
        return ones[0]

    def digit_is_valid(self, rails: Sequence[int]) -> bool:
        return sum(1 for rail in rails if rail) == 1


class DualRailEncoding(OneOfNEncoding):
    """Dual-rail (1-of-2) encoding: one bit per digit, rails (false, true)."""

    def __init__(self) -> None:
        super().__init__(2)
        object.__setattr__(self, "name", "dual-rail")
        object.__setattr__(self, "bits_per_digit", 1)

    def rail_names(self, digit_name: str) -> tuple[str, ...]:
        """Dual-rail wires are conventionally named ``x_f`` (0) and ``x_t`` (1)."""
        return (f"{digit_name}_f", f"{digit_name}_t")


class BundledDataEncoding(DataEncoding):
    """Single-rail bundled data: plain binary wires plus a separate request.

    Validity cannot be derived from the data wires; it is signalled by the
    bundled request after a matched delay (the role of the PDE in the paper's
    PLB).  ``digit_is_valid`` therefore always returns ``True`` -- callers
    must consult the request wire.
    """

    def __init__(self) -> None:
        super().__init__(
            name="bundled-data",
            rails_per_digit=1,
            bits_per_digit=1,
            is_delay_insensitive=False,
        )

    def encode_digit(self, value: int) -> tuple[int, ...]:
        if value not in (0, 1):
            raise EncodingError(f"bundled-data digit must be 0/1, got {value}")
        return (value,)

    def decode_digit(self, rails: Sequence[int]) -> int | None:
        if len(rails) != 1:
            raise EncodingError(f"bundled-data digit has exactly 1 rail, got {len(rails)}")
        return rails[0]

    def digit_is_valid(self, rails: Sequence[int]) -> bool:
        return True

    def rail_names(self, digit_name: str) -> tuple[str, ...]:
        return (digit_name,)


_ENCODINGS = {
    "dual-rail": DualRailEncoding,
    "dualrail": DualRailEncoding,
    "1-of-2": DualRailEncoding,
    "bundled-data": BundledDataEncoding,
    "bundled": BundledDataEncoding,
    "single-rail": BundledDataEncoding,
}


def encoding_by_name(name: str) -> DataEncoding:
    """Construct an encoding from its name (``"1-of-N"`` accepted for any N)."""
    lowered = name.lower()
    if lowered in _ENCODINGS:
        return _ENCODINGS[lowered]()
    if lowered.startswith("1-of-"):
        return OneOfNEncoding(int(lowered.split("-")[-1]))
    raise KeyError(f"unknown encoding {name!r}")
