"""Asynchronous-logic substrate.

This package captures the concepts of Section 2 of the paper in executable
form:

* :mod:`~repro.asynclogic.protocols` -- handshake protocols (4-phase
  return-to-zero and 2-phase transition signalling) and the timing-assumption
  classes (DI, QDI, micropipeline/bundled-data).
* :mod:`~repro.asynclogic.encodings` -- data encodings: dual-rail (1-of-2),
  general 1-of-N, m-of-n sketches, and single-rail bundled data.  Each encoder
  converts integers to rail values and back, and knows its validity/neutrality
  predicates (the "data validity" the LUT2-1 of the LE computes).
* :mod:`~repro.asynclogic.celements` -- behavioural Muller C-element models
  used by the simulator and referenced by the gate library.
* :mod:`~repro.asynclogic.completion` -- completion-detection netlist
  generators (OR per digit followed by a C-element tree).
* :mod:`~repro.asynclogic.channels` -- channel specifications binding a
  protocol, an encoding and a width; used by the style generators and by the
  handshake test benches.
* :mod:`~repro.asynclogic.tokens` -- the token abstraction exchanged by test
  benches with the simulated circuits.
"""

from repro.asynclogic.protocols import (
    Protocol,
    TimingClass,
    FourPhaseProtocol,
    TwoPhaseProtocol,
    protocol_by_name,
)
from repro.asynclogic.encodings import (
    BundledDataEncoding,
    DataEncoding,
    DualRailEncoding,
    OneOfNEncoding,
    encoding_by_name,
)
from repro.asynclogic.celements import CElement, AsymmetricCElement
from repro.asynclogic.channels import Channel, ChannelEnd
from repro.asynclogic.completion import (
    completion_detector,
    dual_rail_validity,
    one_of_n_validity,
)
from repro.asynclogic.tokens import Token

__all__ = [
    "Protocol",
    "TimingClass",
    "FourPhaseProtocol",
    "TwoPhaseProtocol",
    "protocol_by_name",
    "DataEncoding",
    "DualRailEncoding",
    "OneOfNEncoding",
    "BundledDataEncoding",
    "encoding_by_name",
    "CElement",
    "AsymmetricCElement",
    "Channel",
    "ChannelEnd",
    "completion_detector",
    "dual_rail_validity",
    "one_of_n_validity",
    "Token",
]
