"""Channel specifications.

A :class:`Channel` bundles together everything that defines how two
asynchronous modules talk to each other: a handshake protocol, a data
encoding and a payload width.  The style generators use channels to derive
wire names, and the handshake test benches use them to drive and observe
simulated circuits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.asynclogic.encodings import DataEncoding, DualRailEncoding
from repro.asynclogic.protocols import FourPhaseProtocol, Protocol


class ChannelEnd(enum.Enum):
    """Which side of the channel a module sits on."""

    SENDER = "sender"
    RECEIVER = "receiver"


@dataclass(frozen=True)
class Channel:
    """A typed point-to-point asynchronous channel.

    Attributes
    ----------
    name:
        Base name used to derive wire names (``<name>_<digit>_<rail>``,
        ``<name>_req``, ``<name>_ack``).
    width_bits:
        Payload width in binary bits.
    encoding:
        Data encoding of the payload.
    protocol:
        Handshake protocol.
    """

    name: str
    width_bits: int = 1
    encoding: DataEncoding = field(default_factory=DualRailEncoding)
    protocol: Protocol = FourPhaseProtocol

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ValueError("channel width must be at least 1 bit")

    # ------------------------------------------------------------------
    # Wire naming
    # ------------------------------------------------------------------
    @property
    def digits(self) -> int:
        return self.encoding.digits_for_bits(self.width_bits)

    def data_wires(self) -> tuple[str, ...]:
        """All payload wire names, digit by digit."""
        wires: list[str] = []
        for digit_index in range(self.digits):
            digit_name = self.name if self.digits == 1 else f"{self.name}{digit_index}"
            wires.extend(self.encoding.rail_names(digit_name))
        return tuple(wires)

    def digit_wires(self, digit_index: int) -> tuple[str, ...]:
        """Wire names of one digit group."""
        if not 0 <= digit_index < self.digits:
            raise IndexError(f"digit {digit_index} out of range for {self.digits}-digit channel")
        digit_name = self.name if self.digits == 1 else f"{self.name}{digit_index}"
        return self.encoding.rail_names(digit_name)

    @property
    def req_wire(self) -> str:
        """Request wire (only physically present for bundled-data channels)."""
        return f"{self.name}_req"

    @property
    def ack_wire(self) -> str:
        return f"{self.name}_ack"

    @property
    def has_request_wire(self) -> bool:
        """DI codes carry validity on the data wires; bundled data needs a request."""
        return not self.encoding.is_delay_insensitive

    def all_wires(self) -> tuple[str, ...]:
        wires = list(self.data_wires())
        if self.has_request_wire:
            wires.append(self.req_wire)
        wires.append(self.ack_wire)
        return tuple(wires)

    @property
    def wire_count(self) -> int:
        return len(self.all_wires())

    # ------------------------------------------------------------------
    # Value translation
    # ------------------------------------------------------------------
    def encode(self, value: int) -> dict[str, int]:
        """Wire-name → value mapping of the payload for *value* (no req/ack)."""
        rails = self.encoding.encode_word(value, self.width_bits)
        return dict(zip(self.data_wires(), rails))

    def neutral(self) -> dict[str, int]:
        """The all-spacer payload assignment."""
        rails = self.encoding.neutral_word(self.width_bits)
        return dict(zip(self.data_wires(), rails))

    def decode(self, values: dict[str, int]) -> int | None:
        """Decode payload wires back to an integer (``None`` while neutral)."""
        rails = [values[wire] for wire in self.data_wires()]
        return self.encoding.decode_word(rails, self.width_bits)

    def is_valid(self, values: dict[str, int]) -> bool:
        rails = [values[wire] for wire in self.data_wires()]
        return self.encoding.word_is_valid(rails, self.width_bits)

    def is_neutral(self, values: dict[str, int]) -> bool:
        rails = [values[wire] for wire in self.data_wires()]
        return all(rail == 0 for rail in rails)

    def with_name(self, name: str) -> "Channel":
        """A copy of the channel under a different base name."""
        return Channel(
            name=name,
            width_bits=self.width_bits,
            encoding=self.encoding,
            protocol=self.protocol,
        )
