"""repro -- reproduction of "FPGA Architecture for Multi-Style Asynchronous Logic".

This package implements, in pure Python, a behavioural model of the multi-style
asynchronous FPGA proposed by Huot, Dubreuil, Fesquet and Renaudin (DATE 2005),
together with everything needed to exercise it:

* :mod:`repro.logic` -- Boolean functions and truth tables (LUT contents).
* :mod:`repro.netlist` -- gate-level netlists and a gate library including
  Muller C-elements and latches.
* :mod:`repro.asynclogic` -- handshake protocols, delay-insensitive data
  encodings, completion detection and channel abstractions.
* :mod:`repro.styles` -- circuit generators for the supported logic styles
  (QDI dual-rail / 1-of-N, micropipeline bundled data, WCHB pipelines).
* :mod:`repro.core` -- the paper's contribution: the PLB (interconnection
  matrix + two LUT7-3/LUT2-1 logic elements + programmable delay element), the
  island-style fabric, the routing-resource graph and the bitstream format.
* :mod:`repro.cad` -- technology mapping, packing, placement, routing, timing
  and utilisation metrics (filling ratio).
* :mod:`repro.sim` -- event-driven simulation of gate netlists and of the
  configured fabric, with handshake test benches and protocol checkers.
* :mod:`repro.circuits` -- benchmark circuits (the paper's full adder and
  larger workloads) in every style.
* :mod:`repro.sweep` -- the batch sweep engine: (circuit × architecture ×
  options) grids run serially or across a process pool, with a
  content-addressed on-disk cache of flow summaries.
* :mod:`repro.baselines` -- a synchronous LUT4 FPGA baseline and abstract
  models of prior asynchronous FPGAs (MONTAGE, PGA-STC, GALSA, STACC, PAPA).
* :mod:`repro.analysis` -- area models, ASCII architecture figures and result
  tables.

Quickstart::

    from repro import api
    result = api.map_full_adder(style="qdi")
    print(result.report())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
