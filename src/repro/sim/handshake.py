"""Handshake test benches.

The classes here model the *environment* of an asynchronous circuit: producers
that push tokens into input channels and consumers that accept tokens from
output channels, following the 4-phase protocol used throughout the paper's
example (Section 4).

The test bench is rule-based: between two settling runs of the event-driven
simulator each agent looks at the circuit's handshake outputs and decides
whether to change the inputs it drives.  This mirrors how a speed-independent
environment behaves and avoids any timing assumption on the environment side.

Port-name conventions (matching :mod:`repro.styles`):

* QDI function blocks expose their input-completion / acknowledge output as a
  single net (conventionally ``ack`` or ``<channel>_ack``); data inputs are
  the channel's rail wires.
* Micropipeline stages expose ``<in>_req`` / ``<in>_ack`` for the input side
  and ``<out>_req`` / ``<out>_ack`` for the output side, with single-rail data
  wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.asynclogic.channels import Channel
from repro.asynclogic.tokens import Token
from repro.sim.netsim import GateLevelSimulator


class HandshakeDeadlock(RuntimeError):
    """Raised when neither the circuit nor the environment can make progress."""


class EnvironmentAgent:
    """Base class of producers/consumers plugged into a :class:`HandshakeHarness`."""

    def act(self, simulator: GateLevelSimulator) -> bool:
        """Inspect the circuit and possibly drive inputs.

        Returns True when at least one primary input was changed.
        """
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        """True once the agent has no more work to do."""
        raise NotImplementedError


@dataclass
class FourPhaseDualRailProducer(EnvironmentAgent):
    """Drives a DI-encoded channel with a list of values using 4-phase RTZ.

    The *ack_net* is the circuit output acknowledging the data (for the
    paper's QDI full adder this is the completion-detection output).
    """

    channel: Channel
    values: Sequence[int]
    ack_net: str
    tokens: list[Token] = field(default_factory=list)
    _index: int = 0
    _state: str = "idle"  # idle -> valid -> rtz -> idle

    def act(self, simulator: GateLevelSimulator) -> bool:
        ack = simulator.value(self.ack_net)
        if self._state == "idle":
            if self._index >= len(self.values) or ack != 0:
                return False
            value = self.values[self._index]
            token = Token(value=value, issued_at=simulator.now)
            self.tokens.append(token)
            simulator.set_inputs(self.channel.encode(value))
            self._state = "valid"
            return True
        if self._state == "valid":
            if ack != 1:
                return False
            self.tokens[-1].accepted_at = simulator.now
            simulator.set_inputs(self.channel.neutral())
            self._state = "rtz"
            return True
        if self._state == "rtz":
            if ack != 0:
                return False
            self.tokens[-1].completed_at = simulator.now
            self._index += 1
            self._state = "idle"
            # Immediately try to launch the next token.
            return self.act(simulator)
        return False

    @property
    def finished(self) -> bool:
        return self._index >= len(self.values) and self._state == "idle"


@dataclass
class FourPhaseBundledProducer(EnvironmentAgent):
    """Drives a bundled-data channel (single-rail data + request) in 4-phase."""

    channel: Channel
    values: Sequence[int]
    ack_net: str
    reset_data_on_rtz: bool = False
    tokens: list[Token] = field(default_factory=list)
    _index: int = 0
    _state: str = "idle"

    def act(self, simulator: GateLevelSimulator) -> bool:
        ack = simulator.value(self.ack_net)
        if self._state == "idle":
            if self._index >= len(self.values) or ack != 0:
                return False
            value = self.values[self._index]
            token = Token(value=value, issued_at=simulator.now)
            self.tokens.append(token)
            simulator.set_inputs(self.channel.encode(value))
            simulator.set_input(self.channel.req_wire, 1, delay=1)
            self._state = "valid"
            return True
        if self._state == "valid":
            if ack != 1:
                return False
            self.tokens[-1].accepted_at = simulator.now
            simulator.set_input(self.channel.req_wire, 0)
            if self.reset_data_on_rtz:
                simulator.set_inputs(self.channel.neutral())
            self._state = "rtz"
            return True
        if self._state == "rtz":
            if ack != 0:
                return False
            self.tokens[-1].completed_at = simulator.now
            self._index += 1
            self._state = "idle"
            return self.act(simulator)
        return False

    @property
    def finished(self) -> bool:
        return self._index >= len(self.values) and self._state == "idle"


@dataclass
class PassiveDualRailConsumer(EnvironmentAgent):
    """Records values appearing on a DI output channel.

    It drives nothing; it simply samples the output rails whenever the
    *valid_net* (output completion) makes a 0→1 transition.  Suitable for
    function blocks whose outputs are acknowledged by the producer-side
    handshake (the paper's QDI full adder).
    """

    channel: Channel
    valid_net: str
    received: list[int] = field(default_factory=list)
    _last_valid: int = 0

    def act(self, simulator: GateLevelSimulator) -> bool:
        valid = simulator.value(self.valid_net)
        if valid == 1 and self._last_valid == 0:
            value = self.channel.decode(simulator.values_of(self.channel.data_wires()))
            if value is not None:
                self.received.append(value)
        self._last_valid = valid
        return False

    @property
    def finished(self) -> bool:
        return True


@dataclass
class FourPhaseDualRailConsumer(EnvironmentAgent):
    """Accepts tokens from a DI output channel by driving its acknowledge wire.

    Used for pipeline stages (WCHB buffers) whose output channel has an
    explicit acknowledge input.
    """

    channel: Channel
    ack_net: str
    received: list[int] = field(default_factory=list)
    accept_times: list[int] = field(default_factory=list)
    _ack_value: int = 0

    def act(self, simulator: GateLevelSimulator) -> bool:
        wire_values = simulator.values_of(self.channel.data_wires())
        if self.channel.is_valid(wire_values) and self._ack_value == 0:
            value = self.channel.decode(wire_values)
            if value is not None:
                self.received.append(value)
                self.accept_times.append(simulator.now)
            simulator.set_input(self.ack_net, 1)
            self._ack_value = 1
            return True
        if self.channel.is_neutral(wire_values) and self._ack_value == 1:
            simulator.set_input(self.ack_net, 0)
            self._ack_value = 0
            return True
        return False

    @property
    def finished(self) -> bool:
        return self._ack_value == 0


@dataclass
class FourPhaseBundledConsumer(EnvironmentAgent):
    """Accepts tokens from a bundled-data output channel by toggling its ack."""

    channel: Channel
    req_net: str
    ack_net: str
    received: list[int] = field(default_factory=list)
    accept_times: list[int] = field(default_factory=list)
    _ack_value: int = 0

    def act(self, simulator: GateLevelSimulator) -> bool:
        req = simulator.value(self.req_net)
        if req == 1 and self._ack_value == 0:
            value = self.channel.decode(simulator.values_of(self.channel.data_wires()))
            if value is not None:
                self.received.append(value)
                self.accept_times.append(simulator.now)
            simulator.set_input(self.ack_net, 1)
            self._ack_value = 1
            return True
        if req == 0 and self._ack_value == 1:
            simulator.set_input(self.ack_net, 0)
            self._ack_value = 0
            return True
        return False

    @property
    def finished(self) -> bool:
        return self._ack_value == 0


class HandshakeHarness:
    """Coordinates environment agents around an event-driven simulation."""

    def __init__(self, simulator: GateLevelSimulator, agents: Sequence[EnvironmentAgent]) -> None:
        self.simulator = simulator
        self.agents = list(agents)

    def run(self, max_iterations: int = 10_000, max_events_per_step: int = 200_000) -> int:
        """Run until every agent is finished; returns the final simulation time.

        Raises :class:`HandshakeDeadlock` when the circuit is stable, no agent
        can act, and at least one agent still has work to do.
        """
        self.simulator.initialise()
        self.simulator.run(max_events=max_events_per_step)
        for _ in range(max_iterations):
            progress = False
            for agent in self.agents:
                if agent.act(self.simulator):
                    progress = True
            result = self.simulator.run(max_events=max_events_per_step)
            if all(agent.finished for agent in self.agents):
                return self.simulator.now
            if not progress and result.events == 0:
                pending = [agent for agent in self.agents if not agent.finished]
                raise HandshakeDeadlock(
                    f"deadlock at t={self.simulator.now}: {len(pending)} agent(s) stuck "
                    f"({[type(agent).__name__ for agent in pending]})"
                )
        raise RuntimeError(f"handshake harness did not converge in {max_iterations} iterations")
