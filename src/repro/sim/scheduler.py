"""The event-queue kernel shared by all simulators.

The kernel is a straightforward discrete-event scheduler: events are
``(time, sequence, payload)`` triples kept in a heap; ties in time are broken
by insertion order so simulation is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(order=True)
class Event:
    """A scheduled value change (or generic callback payload)."""

    time: int
    sequence: int
    target: Any = field(compare=False)
    value: Any = field(compare=False, default=None)


class EventScheduler:
    """A deterministic discrete-event queue."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self.now: int = 0
        self.processed: int = 0

    def schedule(self, delay: int, target: Any, value: Any = None) -> Event:
        """Schedule an event *delay* time units after the current time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(time=self.now + delay, sequence=next(self._sequence), target=target, value=value)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: int, target: Any, value: Any = None) -> Event:
        """Schedule an event at an absolute time (not before the current time)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past (now={self.now}, requested={time})")
        event = Event(time=time, sequence=next(self._sequence), target=target, value=value)
        heapq.heappush(self._queue, event)
        return event

    def empty(self) -> bool:
        return not self._queue

    def peek_time(self) -> int | None:
        return self._queue[0].time if self._queue else None

    def pop(self) -> Event:
        if not self._queue:
            raise RuntimeError("event queue is empty")
        event = heapq.heappop(self._queue)
        self.now = event.time
        self.processed += 1
        return event

    def pop_simultaneous(self) -> list[Event]:
        """Pop every event scheduled for the next time point."""
        if not self._queue:
            raise RuntimeError("event queue is empty")
        first = self.pop()
        events = [first]
        while self._queue and self._queue[0].time == first.time:
            events.append(heapq.heappop(self._queue))
            self.processed += 1
        return events

    def drain(self, handler: Callable[[Event], None], max_events: int = 1_000_000, until: int | None = None) -> int:
        """Process events until the queue is empty, a limit or a horizon is hit.

        Returns the number of events processed in this call.
        """
        count = 0
        while self._queue and count < max_events:
            if until is not None and self._queue[0].time > until:
                return count
            handler(self.pop())
            count += 1
        # Only a limit hit with runnable events still pending is an
        # oscillation; draining exactly max_events events is fine.
        if self._queue and (until is None or self._queue[0].time <= until):
            raise RuntimeError(
                f"event limit of {max_events} reached at time {self.now}; "
                "the circuit probably oscillates"
            )
        return count

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - convenience
        while self._queue:
            yield self.pop()
