"""Protocol checkers.

The checkers observe sequences of channel states (sampled after each settling
run of a simulator) and verify the invariants of the encoding and of the
handshake protocol:

* :class:`DualRailChecker` -- a dual-rail / 1-of-N digit never has more than
  one rail high, and the channel alternates between neutral and valid code
  words (4-phase discipline).
* :class:`FourPhaseChecker` -- request/acknowledge edges alternate in the
  canonical 4-phase order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import EncodingError


class ProtocolViolation(AssertionError):
    """Raised (or recorded) when an observed sequence breaks the protocol."""


@dataclass
class DualRailChecker:
    """Checks code-word legality and 4-phase alternation on a DI channel."""

    channel: Channel
    strict: bool = True
    violations: list[str] = field(default_factory=list)
    _expect_valid: bool = field(default=True, init=False)
    observed_values: list[int] = field(default_factory=list)

    def observe(self, wire_values: dict[str, int]) -> None:
        """Feed one settled snapshot of the channel's data wires."""
        try:
            value = self.channel.decode(wire_values)
        except EncodingError as exc:
            self._report(f"illegal code word on {self.channel.name}: {exc}")
            return

        if value is None and self.channel.is_neutral(wire_values):
            if self._expect_valid:
                # A neutral phase while expecting data is fine (still waiting);
                # only valid->valid without an intervening spacer is an error.
                return
            self._expect_valid = True
            return

        if value is not None:
            if not self._expect_valid:
                self._report(
                    f"channel {self.channel.name}: two valid code words without a spacer"
                )
            self.observed_values.append(value)
            self._expect_valid = False
            return

        # Partially valid (some digits valid, some neutral): legal transiently,
        # but a settled snapshot should never stay there under 4-phase rules.
        self._report(
            f"channel {self.channel.name}: settled in a partially-valid state {wire_values}"
        )

    def _report(self, message: str) -> None:
        if self.strict:
            raise ProtocolViolation(message)
        self.violations.append(message)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FourPhaseChecker:
    """Checks the req/ack edge ordering of a 4-phase handshake.

    Feed alternating observations of ``(req, ack)`` (sampled when settled);
    the checker verifies the canonical cycle
    ``(0,0) -> (1,0) -> (1,1) -> (0,1) -> (0,0)``.
    """

    name: str = "channel"
    strict: bool = True
    violations: list[str] = field(default_factory=list)
    _state: tuple[int, int] = field(default=(0, 0), init=False)
    handshakes_completed: int = field(default=0, init=False)

    _LEGAL_NEXT = {
        (0, 0): {(0, 0), (1, 0)},
        (1, 0): {(1, 0), (1, 1)},
        (1, 1): {(1, 1), (0, 1)},
        (0, 1): {(0, 1), (0, 0)},
    }

    def observe(self, req: int, ack: int) -> None:
        new_state = (1 if req else 0, 1 if ack else 0)
        if new_state not in self._LEGAL_NEXT[self._state]:
            message = (
                f"{self.name}: illegal 4-phase transition {self._state} -> {new_state}"
            )
            if self.strict:
                raise ProtocolViolation(message)
            self.violations.append(message)
        if self._state == (0, 1) and new_state == (0, 0):
            self.handshakes_completed += 1
        self._state = new_state

    @property
    def ok(self) -> bool:
        return not self.violations
