"""Minimal VCD (value change dump) writer.

The examples use this to export waveforms of simulated handshakes so they can
be inspected with any standard waveform viewer (GTKWave etc.).  Only scalar
two-valued signals are supported, which is all the simulators produce.
"""

from __future__ import annotations

import string
from typing import Iterable, TextIO


class VcdWriter:
    """Accumulate value changes and render a VCD file."""

    def __init__(self, design_name: str = "repro", timescale: str = "1ps") -> None:
        self.design_name = design_name
        self.timescale = timescale
        self._signals: dict[str, str] = {}
        self._changes: list[tuple[int, str, int]] = []
        self._identifiers = self._identifier_stream()

    @staticmethod
    def _identifier_stream():
        alphabet = string.ascii_letters + string.digits + "!@#$%^&*"
        index = 0
        while True:
            code = []
            value = index
            while True:
                code.append(alphabet[value % len(alphabet)])
                value //= len(alphabet)
                if value == 0:
                    break
            yield "".join(code)
            index += 1

    def declare(self, net_name: str) -> None:
        if net_name not in self._signals:
            self._signals[net_name] = next(self._identifiers)

    def declare_all(self, net_names: Iterable[str]) -> None:
        for name in net_names:
            self.declare(name)

    def change(self, time: int, net_name: str, value: int) -> None:
        self.declare(net_name)
        self._changes.append((time, net_name, 1 if value else 0))

    def add_trace(self, net_name: str, changes: Iterable[tuple[int, int]]) -> None:
        """Import a whole ``(time, value)`` trace recorded by a simulator."""
        for time, value in changes:
            self.change(time, net_name, value)

    def render(self) -> str:
        lines = [
            "$date reproduced-run $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.design_name} $end",
        ]
        for name, identifier in self._signals.items():
            lines.append(f"$var wire 1 {identifier} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        lines.append("#0")
        lines.append("$dumpvars")
        initial: dict[str, int] = {}
        for time, name, value in sorted(self._changes, key=lambda item: item[0]):
            if name not in initial:
                initial[name] = value if time == 0 else 0
        for name, identifier in self._signals.items():
            lines.append(f"{initial.get(name, 0)}{identifier}")
        lines.append("$end")

        last_time = 0
        for time, name, value in sorted(self._changes, key=lambda item: (item[0])):
            if time == 0:
                continue
            if time != last_time:
                lines.append(f"#{time}")
                last_time = time
            lines.append(f"{value}{self._signals[name]}")
        return "\n".join(lines) + "\n"

    def write(self, stream: TextIO) -> None:
        stream.write(self.render())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            self.write(handle)
