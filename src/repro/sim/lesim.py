"""LE-level simulation of mapped designs.

A :class:`~repro.cad.lemap.MappedDesign` is turned into an ordinary gate-level
netlist whose "gates" are the mapped LEs (one dynamically created cell type
per LE, with one output per LUT/validity function) and whose delay elements
are ``DELAY`` cells.  Feedback (memory-by-looping) simply becomes an input pin
connected to the cell's own output net, which the event-driven simulator
handles naturally.

This lets every piece of simulation infrastructure (handshake harnesses,
checkers, traces) run unchanged on mapped designs, so tests can prove that the
mapping preserved the circuit's behaviour.
"""

from __future__ import annotations

from repro.cad.lemap import MappedDesign, MappedLE
from repro.netlist.celltypes import CellType, STANDARD_LIBRARY
from repro.netlist.netlist import Netlist, PortDirection
from repro.sim.netsim import GateLevelSimulator

#: Nominal delay of one LE evaluation (through the IM and the LUT), in ps.
LE_DELAY_PS = 250


def _le_cell_type(le: MappedLE, delay_ps: int = LE_DELAY_PS) -> CellType:
    """Build a cell type whose outputs reproduce the LE's configured functions.

    Pin naming: inputs are ``p0, p1, ...`` (one per distinct input net,
    including feedback nets); outputs are ``q0, q1, ...`` in the order of the
    LE's functions followed by the validity function.
    """
    input_nets: list[str] = []
    for function in le.functions:
        for net in function.input_nets:
            if net not in input_nets:
                input_nets.append(net)
    if le.validity is not None:
        for net in le.validity.input_nets:
            if net not in input_nets:
                input_nets.append(net)

    pin_of_net = {net: f"p{index}" for index, net in enumerate(input_nets)}
    inputs = tuple(pin_of_net[net] for net in input_nets)

    functions = list(le.functions) + ([le.validity] if le.validity is not None else [])
    outputs = tuple(f"q{index}" for index in range(len(functions)))
    tables = {
        f"q{index}": function.table.rename(pin_of_net)
        for index, function in enumerate(functions)
    }
    has_feedback = any(function.has_feedback for function in functions)
    return CellType(
        name=f"LE_{le.name}",
        inputs=inputs,
        outputs=outputs,
        tables=tables,
        delay=delay_ps,
        is_sequential=has_feedback,
        area=4.0,
    )


def mapped_design_to_netlist(
    design: MappedDesign,
    le_delay_ps: int = LE_DELAY_PS,
    extra_net_delays: dict[str, int] | None = None,
) -> Netlist:
    """Lower a mapped design to a simulatable netlist of LE cells.

    ``extra_net_delays`` optionally adds a routed-wire delay on given nets by
    inserting a delay buffer between the producing LE and its consumers (used
    by the fabric-level simulator to account for routing).
    """
    netlist = Netlist(f"{design.name}_mapped", library=STANDARD_LIBRARY)
    for net in design.primary_inputs:
        netlist.add_port(net, PortDirection.INPUT)
    for net in design.primary_outputs:
        netlist.add_port(net, PortDirection.OUTPUT)

    extra_net_delays = dict(extra_net_delays or {})
    renamed_outputs: dict[str, str] = {}

    def delayed(net: str) -> str:
        """The name the producer should drive for *net* (pre-delay buffer)."""
        if net in extra_net_delays and net not in renamed_outputs:
            renamed_outputs[net] = f"{net}__pre_route"
        return renamed_outputs.get(net, net)

    for le in design.les:
        cell_type = _le_cell_type(le, delay_ps=le_delay_ps)
        input_nets: list[str] = []
        for function in le.functions:
            for net in function.input_nets:
                if net not in input_nets:
                    input_nets.append(net)
        if le.validity is not None:
            for net in le.validity.input_nets:
                if net not in input_nets:
                    input_nets.append(net)
        functions = list(le.functions) + ([le.validity] if le.validity is not None else [])

        connections = {}
        for index, net in enumerate(input_nets):
            connections[f"p{index}"] = net
        for index, function in enumerate(functions):
            connections[f"q{index}"] = delayed(function.output_net)
        netlist.add_cell(le.name, cell_type, connections)

    for pde in design.pdes:
        netlist.add_cell(
            f"pde_{pde.output_net}",
            STANDARD_LIBRARY.get("DELAY"),
            {"a": pde.input_net, "z": delayed(pde.output_net)},
            delay=pde.delay_ps,
        )

    # Insert routing-delay buffers where requested.
    for net, delay in extra_net_delays.items():
        pre = renamed_outputs.get(net)
        if pre is None:
            continue
        netlist.add_cell(
            f"route_{net}",
            STANDARD_LIBRARY.get("DELAY"),
            {"a": pre, "z": net},
            delay=max(1, int(delay)),
        )

    return netlist


def simulate_mapped_design(
    design: MappedDesign,
    le_delay_ps: int = LE_DELAY_PS,
    extra_net_delays: dict[str, int] | None = None,
    trace_all: bool = False,
) -> GateLevelSimulator:
    """Convenience constructor: a simulator over the lowered mapped design."""
    netlist = mapped_design_to_netlist(design, le_delay_ps, extra_net_delays)
    return GateLevelSimulator(netlist, trace_all=trace_all)
