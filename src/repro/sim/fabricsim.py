"""Fabric-level simulation of a placed-and-routed design.

The fabric simulator reuses the LE-level lowering of
:mod:`repro.sim.lesim` and annotates every routed net with the delay the
timing model derives from its routed tree, so the simulated behaviour reflects
the implementation on the fabric (LE delays + interconnection-matrix delay +
routed wire delays + programmed PDE delays).

Because asynchronous circuits are delay-insensitive (QDI) or protected by
matched delays (micropipeline), the functional results must not change with
routing -- a property the integration tests verify by running the same token
sequences at both levels.
"""

from __future__ import annotations

from repro.cad.flow import FlowResult
from repro.cad.timing import TimingModel
from repro.sim.lesim import simulate_mapped_design
from repro.sim.netsim import GateLevelSimulator


def routed_net_delays(result: FlowResult, model: TimingModel | None = None) -> dict[str, int]:
    """Per-net routed delay (ps) from a flow result that includes routing."""
    if result.routing is None:
        return {}
    model = model if model is not None else TimingModel()
    graph = None
    delays: dict[str, int] = {}
    # The flow owns the RR graph; rebuild lazily only if needed.
    from repro.core.rrgraph import RoutingResourceGraph
    from repro.core.fabric import Fabric

    graph = RoutingResourceGraph(Fabric(result.architecture))
    for net, routed in result.routing.routed.items():
        delays[net] = model.routed_net_delay(graph, routed.nodes)
    return delays


def simulate_on_fabric(
    result: FlowResult,
    model: TimingModel | None = None,
    trace_all: bool = False,
) -> GateLevelSimulator:
    """A simulator of the mapped design with routed wire delays applied."""
    model = model if model is not None else TimingModel()
    delays = routed_net_delays(result, model)
    return simulate_mapped_design(
        result.mapped,
        le_delay_ps=model.le_delay_ps + model.im_delay_ps,
        extra_net_delays=delays,
        trace_all=trace_all,
    )
