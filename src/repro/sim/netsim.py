"""Gate-level event-driven simulation of netlists.

:class:`GateLevelSimulator` evaluates a
:class:`~repro.netlist.netlist.Netlist` under a transport-delay model:

* every cell output is recomputed whenever one of its input nets changes;
* the new value is scheduled after the cell's propagation delay (the library
  default, overridable per instance with a ``delay`` attribute);
* state-holding cells (Muller C-elements, latches) read their own current
  output through the ``y`` state variable of their truth table, which is how
  the target architecture realises them (LUT output looped through the PLB's
  interconnection matrix).

The simulator records full transition traces per net, which the hazard
analyser and the protocol checkers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.netlist.celltypes import STATE_VARIABLE
from repro.netlist.netlist import Cell, Netlist
from repro.sim.scheduler import EventScheduler


@dataclass
class _PendingOutput:
    """The one in-flight scheduled change of a driven net."""

    value: int
    sequence: int  # scheduler sequence of the event, for exact cancellation


@dataclass
class SimulationResult:
    """Summary of one :meth:`GateLevelSimulator.run` call."""

    start_time: int
    end_time: int
    events: int
    settled: bool

    @property
    def duration(self) -> int:
        return self.end_time - self.start_time


class GateLevelSimulator:
    """Event-driven two-valued (0/1) simulator for gate netlists."""

    def __init__(
        self,
        netlist: Netlist,
        trace_nets: Iterable[str] | None = None,
        trace_all: bool = False,
        default_delay: int | None = None,
    ) -> None:
        self.netlist = netlist
        self.scheduler = EventScheduler()
        self.values: dict[str, int] = {name: 0 for name in netlist.nets}
        self.default_delay = default_delay
        self.traces: dict[str, list[tuple[int, int]]] = {}
        self._traced: set[str] = set(netlist.nets) if trace_all else set(trace_nets or [])
        for name in self._traced:
            self.traces[name] = [(0, 0)]
        # Driven nets carry at most ONE in-flight event: a newer driver
        # evaluation supersedes (cancels) the older scheduled change instead
        # of queueing behind it.  This is inertial-delay collapse — pulses
        # narrower than the cell delay are absorbed — and it is what keeps
        # state-holding cells stable: with both events queued, every
        # own-output change re-evaluates the driver against the *other*
        # event's value and schedules yet another correction, ping-ponging
        # forever.  Primary-input nets are never driver outputs, so stimulus
        # scheduled via :meth:`set_input` is unaffected.
        self._pending: dict[str, _PendingOutput] = {}
        self._cancelled: set[int] = set()
        # Sink index: net name -> cells reading it.
        self._readers: dict[str, list[Cell]] = {name: [] for name in netlist.nets}
        for cell in netlist.iter_cells():
            for net_name in cell.input_nets().values():
                self._readers[net_name].append(cell)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.scheduler.now

    def value(self, net_name: str) -> int:
        return self.values[net_name]

    def values_of(self, net_names: Iterable[str]) -> dict[str, int]:
        return {name: self.values[name] for name in net_names}

    def trace(self, net_name: str) -> list[tuple[int, int]]:
        """The recorded ``(time, value)`` transitions of a traced net."""
        if net_name not in self._traced:
            raise KeyError(f"net {net_name!r} was not traced")
        return list(self.traces[net_name])

    # ------------------------------------------------------------------
    # Stimulus
    # ------------------------------------------------------------------
    def set_input(self, net_name: str, value: int, delay: int = 0) -> None:
        """Drive a primary input to *value* after *delay* time units."""
        net = self.netlist.net(net_name)
        if not net.is_primary_input:
            raise ValueError(f"net {net_name!r} is not a primary input")
        self.scheduler.schedule(delay, net_name, 1 if value else 0)

    def set_inputs(self, assignment: Mapping[str, int], delay: int = 0) -> None:
        for name, value in assignment.items():
            self.set_input(name, value, delay=delay)

    def initialise(self, iterations: int = 4) -> None:
        """Settle the circuit from the all-zero state.

        Sequential cells power up with output 0 (their nets start at 0); a few
        evaluation sweeps propagate consistent values through the
        combinational logic before stimulus is applied.
        """
        for _ in range(iterations):
            changed = False
            try:
                order = self.netlist.topological_order()
            except ValueError:
                order = list(self.netlist.iter_cells())
            for cell in order:
                for pin, value in self._evaluate_cell(cell).items():
                    net_name = cell.connections[pin]
                    if self.values[net_name] != value:
                        self.values[net_name] = value
                        self._record(net_name, value)
                        changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # Core evaluation
    # ------------------------------------------------------------------
    def _cell_delay(self, cell: Cell) -> int:
        if "delay" in cell.attributes:
            return int(cell.attributes["delay"])  # per-instance override (e.g. DELAY cells)
        if self.default_delay is not None:
            return self.default_delay
        return cell.cell_type.delay

    def _evaluate_cell(self, cell: Cell) -> dict[str, int]:
        """Evaluate every output of *cell* from the current net values."""
        results: dict[str, int] = {}
        for output_pin in cell.cell_type.outputs:
            table = cell.cell_type.table_for(output_pin)
            assignment: dict[str, int] = {}
            for variable in table.inputs:
                if variable == STATE_VARIABLE:
                    assignment[variable] = self.values[cell.connections[output_pin]]
                else:
                    assignment[variable] = self.values[cell.connections[variable]]
            results[output_pin] = table.evaluate(assignment)
        return results

    def _record(self, net_name: str, value: int) -> None:
        if net_name in self._traced:
            self.traces[net_name].append((self.scheduler.now, value))

    def _schedule_output(self, cell: Cell, output_pin: str, value: int) -> None:
        net_name = cell.connections[output_pin]
        pending = self._pending.get(net_name)
        if pending is not None:
            if pending.value == value:
                return  # identical change already in flight
            # This evaluation saw newer input values than the in-flight one;
            # cancel the stale event (last evaluation wins).
            self._cancelled.add(pending.sequence)
            self._pending.pop(net_name, None)
        if self.values[net_name] == value:
            return  # no change and nothing in flight
        event = self.scheduler.schedule(self._cell_delay(cell), net_name, value)
        self._pending[net_name] = _PendingOutput(value=value, sequence=event.sequence)

    def _handle_event(self, event) -> None:
        if event.sequence in self._cancelled:
            self._cancelled.discard(event.sequence)
            return
        net_name = event.target
        value = event.value
        pending = self._pending.get(net_name)
        if pending is not None and pending.sequence == event.sequence:
            self._pending.pop(net_name, None)
        if self.values[net_name] == value:
            return
        self.values[net_name] = value
        self._record(net_name, value)
        for cell in self._readers[net_name]:
            for output_pin, new_value in self._evaluate_cell(cell).items():
                self._schedule_output(cell, output_pin, new_value)
        # Sequential cells also need re-evaluation when their own output net
        # changes (the feedback input), which the loop above covers because a
        # sequential cell's output is not among its reader inputs; evaluate
        # the drivers of this net explicitly if they are sequential.
        driver = self.netlist.driver_of(net_name)
        if driver is not None and driver[0].cell_type.is_sequential:
            cell, _pin = driver
            for output_pin, new_value in self._evaluate_cell(cell).items():
                self._schedule_output(cell, output_pin, new_value)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, max_events: int = 200_000, until: int | None = None) -> SimulationResult:
        """Propagate events until the circuit settles (or a limit is reached)."""
        start = self.scheduler.now
        events = self.scheduler.drain(self._handle_event, max_events=max_events, until=until)
        settled = self.scheduler.empty() or (
            until is not None and (self.scheduler.peek_time() or 0) > until
        )
        return SimulationResult(
            start_time=start, end_time=self.scheduler.now, events=events, settled=settled
        )

    def run_until_stable(self, max_events: int = 200_000) -> SimulationResult:
        return self.run(max_events=max_events, until=None)

    def apply_and_settle(self, assignment: Mapping[str, int], max_events: int = 200_000) -> SimulationResult:
        """Drive primary inputs and run until the circuit is quiescent."""
        self.set_inputs(assignment)
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def output_values(self) -> dict[str, int]:
        return {name: self.values[name] for name in self.netlist.primary_outputs}

    def wait_for(
        self,
        net_name: str,
        value: int,
        max_events: int = 200_000,
    ) -> bool:
        """Run until *net_name* holds *value*; returns False if it never does."""
        if self.values[net_name] == value:
            return True
        while not self.scheduler.empty():
            self._handle_event(self.scheduler.pop())
            max_events -= 1
            if max_events <= 0:
                raise RuntimeError(f"event limit reached while waiting for {net_name}={value}")
            if self.values[net_name] == value:
                return True
        return self.values[net_name] == value


def evaluate_combinational(netlist: Netlist, assignment: Mapping[str, int]) -> dict[str, int]:
    """Zero-delay functional evaluation of a netlist for one input vector.

    Sequential cells are iterated to a fixed point, so circuits whose state
    converges for the given inputs (e.g. C-elements with all inputs equal)
    also evaluate correctly.  Used by tests as a golden reference.
    """
    simulator = GateLevelSimulator(netlist, default_delay=1)
    simulator.initialise()
    simulator.set_inputs(assignment)
    simulator.run()
    return simulator.output_values()
