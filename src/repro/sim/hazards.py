"""Glitch and monotonicity analysis of simulation traces.

Asynchronous circuits must be hazard-free (Section 2 of the paper): a signal
that is supposed to make a single transition during a handshake phase must not
glitch.  The helpers here post-process the transition traces recorded by the
simulators:

* :func:`count_glitches` counts extra transitions inside a time window where
  only one transition is expected.
* :func:`is_monotonic_transition` checks that a signal changed at most once
  within a window (the QDI requirement for code-word transitions).
* :class:`TransitionTrace` wraps a raw ``(time, value)`` list with convenience
  queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class TransitionTrace:
    """A recorded signal trace: a list of ``(time, value)`` changes."""

    net: str
    changes: list[tuple[int, int]]

    def window(self, start: int, end: int) -> list[tuple[int, int]]:
        """Changes with ``start < time <= end`` (excludes the initial state)."""
        return [(time, value) for time, value in self.changes if start < time <= end]

    def value_at(self, time: int) -> int:
        """Signal value at *time* (value of the last change not after it)."""
        current = 0
        for change_time, value in self.changes:
            if change_time > time:
                break
            current = value
        return current

    def transition_count(self, start: int, end: int) -> int:
        return len(self.window(start, end))

    def rising_edges(self, start: int = 0, end: int | None = None) -> list[int]:
        previous = self.value_at(start)
        edges = []
        for time, value in self.changes:
            if time <= start:
                continue
            if end is not None and time > end:
                break
            if value == 1 and previous == 0:
                edges.append(time)
            previous = value
        return edges

    def falling_edges(self, start: int = 0, end: int | None = None) -> list[int]:
        previous = self.value_at(start)
        edges = []
        for time, value in self.changes:
            if time <= start:
                continue
            if end is not None and time > end:
                break
            if value == 0 and previous == 1:
                edges.append(time)
            previous = value
        return edges


def count_glitches(changes: Sequence[tuple[int, int]], start: int, end: int) -> int:
    """Number of *extra* transitions in ``(start, end]`` beyond the first.

    A hazard-free signal transitions at most once per handshake phase, so any
    additional change is a glitch.
    """
    in_window = [change for change in changes if start < change[0] <= end]
    return max(0, len(in_window) - 1)


def is_monotonic_transition(changes: Sequence[tuple[int, int]], start: int, end: int) -> bool:
    """True when the signal changes at most once within ``(start, end]``."""
    return count_glitches(changes, start, end) == 0


def analyse_traces(
    traces: dict[str, list[tuple[int, int]]],
    start: int,
    end: int,
) -> dict[str, int]:
    """Glitch count per net over the window; nets with zero glitches included."""
    return {
        net: count_glitches(changes, start, end) for net, changes in sorted(traces.items())
    }


def total_glitches(traces: dict[str, list[tuple[int, int]]], start: int, end: int) -> int:
    return sum(analyse_traces(traces, start, end).values())
