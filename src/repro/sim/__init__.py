"""Event-driven simulation.

The simulators here validate designs at three levels of abstraction:

* :mod:`~repro.sim.netsim` -- gate-level simulation of
  :class:`~repro.netlist.netlist.Netlist` objects with per-cell delays
  (including the state-holding Muller C-elements and latches).
* :mod:`~repro.sim.lesim` -- simulation of LE-level mapped netlists
  (:class:`repro.cad.lemap.MappedDesign`), evaluating LUT7-3 / LUT2-1
  configurations with feedback through the PLB interconnection matrix.
* :mod:`~repro.sim.fabricsim` -- simulation of a fully placed-and-routed
  design on the fabric, adding routed wire delays.

Support modules:

* :mod:`~repro.sim.scheduler` -- the shared event-queue kernel.
* :mod:`~repro.sim.handshake` -- 4-phase / 2-phase producers and consumers
  that push tokens through simulated circuits over
  :class:`~repro.asynclogic.channels.Channel` specifications.
* :mod:`~repro.sim.hazards` -- glitch/monotonicity analysis of signal traces.
* :mod:`~repro.sim.checkers` -- protocol checkers (dual-rail legality,
  4-phase alternation).
* :mod:`~repro.sim.vcd` -- a minimal VCD dump writer.
"""

from repro.sim.scheduler import Event, EventScheduler
from repro.sim.netsim import GateLevelSimulator
from repro.sim.handshake import (
    FourPhaseBundledConsumer,
    FourPhaseBundledProducer,
    FourPhaseDualRailConsumer,
    FourPhaseDualRailProducer,
    HandshakeHarness,
    PassiveDualRailConsumer,
)
from repro.sim.hazards import TransitionTrace, count_glitches, is_monotonic_transition
from repro.sim.checkers import DualRailChecker, FourPhaseChecker
from repro.sim.vcd import VcdWriter

__all__ = [
    "Event",
    "EventScheduler",
    "GateLevelSimulator",
    "HandshakeHarness",
    "FourPhaseDualRailProducer",
    "FourPhaseDualRailConsumer",
    "FourPhaseBundledProducer",
    "FourPhaseBundledConsumer",
    "PassiveDualRailConsumer",
    "TransitionTrace",
    "count_glitches",
    "is_monotonic_transition",
    "DualRailChecker",
    "FourPhaseChecker",
    "VcdWriter",
]
