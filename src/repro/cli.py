"""``repro-sweep``: the command-line interface to the batch sweep engine.

Six subcommands over :func:`repro.api.run_sweep` and
:class:`repro.sweep.SweepResultStore`:

* ``run``    -- execute a (circuit × architecture × options) grid, optionally
  cached, parallel and exported to CSV/JSON; ``--timeout`` / ``--retries`` /
  ``--backoff`` / ``--fail-fast`` drive the supervision layer
  (``docs/robustness.md``);
* ``stats``  -- store observability: record counts, on-disk bytes, how many
  records belong to retired code fingerprints, per-status and per-kernel
  breakdowns and the quarantine;
* ``gc``     -- delete retired-fingerprint records (``--keep-latest N``
  spares the N most recent retired generations; ``--dry-run`` previews) and
  reap the quarantine;
* ``export`` -- render a populated store to CSV / JSON / a text table
  without re-running anything;
* ``clear``  -- delete every record;
* ``chaos``  -- run a seeded fault-injection campaign
  (:func:`repro.sweep.chaos.run_campaign`) and verify every recovery path:
  crashes retried, repeat-killers poisoned, torn writes quarantined,
  unaffected summaries bit-identical to a fault-free run.

Installed as a console script by ``setup.py``; also runnable without
installation as ``python -m repro.cli``.  See ``docs/sweep.md`` for a
walk-through of the cache lifecycle the commands operate on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams, RoutingParams
from repro.sweep import (
    StoreLockTimeout,
    SweepResultStore,
    available_executors,
    format_report,
    format_stats,
    report_from_records,
    write_csv,
    write_json,
)


def _parse_grid(text: str) -> tuple[int, int]:
    """``"6x6"`` → ``(6, 6)``; raised errors become argparse messages."""
    try:
        width, _, height = text.lower().partition("x")
        return (int(width), int(height))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"grid must look like WIDTHxHEIGHT (e.g. 6x6), got {text!r}"
        ) from None


def _positive_float(text: str) -> float:
    """A strictly positive float; violations exit 2 like any usage error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _probability(text: str) -> float:
    value = _nonnegative_float(text)
    if value > 1:
        raise argparse.ArgumentTypeError(f"must be a probability in [0, 1], got {text!r}")
    return value


def _attempts(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _architectures(args: argparse.Namespace) -> list[ArchitectureParams]:
    """The architecture axis: every grid × every channel width."""
    grids = args.grid or [(None, None)]
    widths = args.channel_width or [None]
    reference = ArchitectureParams()
    architectures = []
    for grid in grids:
        for channel_width in widths:
            routing = (
                RoutingParams(channel_width=channel_width)
                if channel_width is not None
                else reference.routing
            )
            architectures.append(
                ArchitectureParams(
                    width=grid[0] if grid[0] is not None else reference.width,
                    height=grid[1] if grid[1] is not None else reference.height,
                    routing=routing,
                )
            )
    return architectures


def _options(args: argparse.Namespace) -> list[FlowOptions]:
    """The options axis: seeds × placement efforts × timing tradeoffs."""
    seeds = args.seed or [1]
    if args.analysis_only:
        return [
            FlowOptions(
                run_placement=False,
                run_routing=False,
                generate_bitstream=False,
                placement_seed=seed,
            )
            for seed in seeds
        ]
    efforts = args.placement_effort or [1.0]
    timing_driven = bool(args.timing_driven)
    tradeoffs = args.timing_tradeoff or [0.5]
    if args.timing_tradeoff and not timing_driven:
        # An explicit tradeoff axis implies the timing-driven flow.
        timing_driven = True
    return [
        FlowOptions(
            placement_seed=seed,
            placement_effort=effort,
            timing_driven=timing_driven,
            timing_tradeoff=tradeoff,
        )
        for seed in seeds
        for effort in efforts
        for tradeoff in tradeoffs
    ]


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import api

    report = api.run_sweep(
        circuits=args.circuit or None,
        architectures=_architectures(args),
        options=_options(args),
        workers=args.workers,
        cache_dir=args.store,
        executor=args.executor,
        placement_cache=not args.no_placement_cache,
        routing_cache=args.routing_cache,
        artifact_dir=args.artifacts,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        fail_fast=args.fail_fast,
        fallback=tuple(args.fallback or ()),
        kernel=args.kernel,
    )
    if args.csv:
        print(f"wrote {write_csv(report, args.csv)}")
    if args.json:
        print(f"wrote {write_json(report, args.json)}")
    if args.quiet:
        print(format_stats(report))
    else:
        print(format_report(report))
    if args.strict and report.error_count:
        return 1
    return 0


def _open_store(args: argparse.Namespace) -> SweepResultStore:
    """Open an existing store for inspection; never create one as a side effect."""
    return SweepResultStore(args.store, create=False)


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        stats = _open_store(args).stats()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for key, value in stats.items():
        print(f"{key:>20}: {value}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    try:
        outcome = _open_store(args).gc(
            keep_latest=args.keep_latest,
            dry_run=args.dry_run,
            max_bytes=args.max_bytes,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StoreLockTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    verb = "would remove" if args.dry_run else "removed"
    message = (
        f"{verb} {outcome['removed']} record(s) "
        f"({outcome['bytes_freed']} bytes) across "
        f"{outcome['generations_removed']} retired generation(s); "
        f"kept {outcome['kept_current']} current + "
        f"{outcome['kept_retired']} spared retired record(s)"
    )
    if args.max_bytes is not None:
        message += f"; {outcome['size_evicted']} evicted for the size bound"
    print(message)
    return 0


def _export_bitstreams(args: argparse.Namespace) -> int:
    """Render one ``.bit`` file per stored flow from its stage artifacts."""
    import re
    from pathlib import Path

    from repro.artifacts import ArtifactStore, load_flow_artifacts

    try:
        artifact_store = ArtifactStore(args.artifacts, create=False)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    views = load_flow_artifacts(artifact_store)
    outdir = Path(args.bitstreams)
    outdir.mkdir(parents=True, exist_ok=True)
    written = 0
    skipped = 0
    for view in views:
        bitstream = view.render_bitstream()
        if bitstream is None:
            skipped += 1
            continue
        arch = view.architecture
        circuit = re.sub(r"[^A-Za-z0-9_.-]+", "_", view.circuit)
        name = (
            f"{circuit}_{arch.width}x{arch.height}"
            f"_cw{arch.routing.channel_width}_{view.flow_key[:12]}.bit"
        )
        (outdir / name).write_bytes(bitstream.to_bytes())
        written += 1
    if not written:
        print(
            "no renderable flow artifacts in the store for the current "
            "code fingerprint"
        )
        return 1
    message = f"wrote {written} bitstream(s) to {outdir}"
    if skipped:
        message += f" ({skipped} flow(s) lacked renderable artifacts)"
    print(message)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.fingerprint import code_fingerprint

    if args.bitstreams and not args.artifacts:
        print("error: --bitstreams requires --artifacts DIR", file=sys.stderr)
        return 2
    try:
        store = _open_store(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.bitstreams:
        code = _export_bitstreams(args)
        if code:
            return code
        if not (args.csv or args.json or args.text):
            return 0
    report = report_from_records(
        store.records(),
        current_fingerprint=None if args.all_generations else code_fingerprint(),
    )
    if not report.outcomes:
        print("store holds no flow records" + (
            "" if args.all_generations else " for the current code fingerprint"
        ))
        return 1
    wrote_file = False
    if args.csv:
        print(f"wrote {write_csv(report, args.csv)}")
        wrote_file = True
    if args.json:
        print(f"wrote {write_json(report, args.json)}")
        wrote_file = True
    if args.text or not wrote_file:
        print(format_report(report))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault-injection campaign and audit its recovery paths."""
    import json as json_module

    from repro.sweep.chaos import FaultPlan, run_campaign
    from repro.sweep.runner import RetryPolicy
    from repro.sweep.spec import SweepSpec

    widths = args.channel_width or [8, 10]
    architectures = [
        ArchitectureParams(routing=RoutingParams(channel_width=width))
        for width in widths
    ]
    options = (
        FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)
        if args.analysis_only
        else FlowOptions()
    )
    spec = SweepSpec.build(args.circuit or ["qdi_full_adder"], architectures, options)
    labels = [point.label() for point in spec.points()]
    unknown = [label for label in (args.poison or []) if label not in labels]
    if unknown:
        print(
            f"error: --poison label(s) {', '.join(unknown)} not in the grid "
            f"({', '.join(labels)})",
            file=sys.stderr,
        )
        return 2

    plan = FaultPlan.build(
        seed=args.seed,
        p_crash=args.crash,
        p_hang=args.hang,
        p_oserror=args.oserror,
        p_torn_write=args.torn,
        faulted_attempts=args.faulted_attempts,
        poison=args.poison or (),
    )
    outcome = run_campaign(
        spec,
        plan,
        store=args.store,
        executor=args.executor,
        workers=args.workers,
        timeout_s=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries),
        max_point_crashes=args.max_point_crashes,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(outcome, handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    print(json_module.dumps(outcome, indent=1, sort_keys=True))

    failures: list[str] = []
    if not outcome["completed"]:
        failures.append("the campaign did not produce a record for every point")
    if not outcome["summaries_match"]:
        failures.append(
            "surviving summaries diverged from the fault-free baseline: "
            + ", ".join(outcome["summary_mismatches"])  # type: ignore[arg-type]
        )
    poisoned = outcome["statuses"]["poisoned"]  # type: ignore[index]
    if args.poison and poisoned < len(args.poison):
        failures.append(
            f"expected >= {len(args.poison)} poisoned point(s), got {poisoned}"
        )
    if outcome["torn_keys"] and outcome["quarantined"] < len(outcome["torn_keys"]):  # type: ignore[arg-type]
        failures.append(
            f"{len(outcome['torn_keys'])} torn write(s) but only "  # type: ignore[arg-type]
            f"{outcome['quarantined']} quarantined file(s)"
        )
    if failures:
        for failure in failures:
            print(f"chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos: all recovery paths held")
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    try:
        removed = SweepResultStore(args.store).clear()
    except StoreLockTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"removed {removed} record(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run, cache and inspect CAD-flow sweeps of the "
        "multi-style asynchronous FPGA reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="execute a sweep grid (cached when --store is given)"
    )
    run.add_argument(
        "--circuit",
        action="append",
        metavar="NAME",
        help="registry circuit name; repeatable (default: the full registry)",
    )
    run.add_argument(
        "--grid",
        action="append",
        type=_parse_grid,
        metavar="WxH",
        help="fabric grid size, e.g. 6x6; repeatable (default: the reference 6x6)",
    )
    run.add_argument(
        "--channel-width",
        action="append",
        type=int,
        metavar="N",
        help="routing channel width; repeatable (default: the reference 8)",
    )
    run.add_argument(
        "--seed",
        action="append",
        type=int,
        metavar="N",
        help="placement seed; repeatable (default: 1)",
    )
    run.add_argument(
        "--analysis-only",
        action="store_true",
        help="skip placement/routing/bitstream (map + pack + metrics only)",
    )
    run.add_argument(
        "--placement-effort",
        action="append",
        type=float,
        metavar="X",
        help="annealing effort multiplier; repeatable axis (default: 1.0)",
    )
    run.add_argument(
        "--timing-driven",
        action="store_true",
        help="run the timing-driven flow (criticality-fed placement/routing "
        "+ critical-net re-route; adds cycle_time improvement columns)",
    )
    run.add_argument(
        "--timing-tradeoff",
        action="append",
        type=float,
        metavar="L",
        help="placement blend weight lambda in [0,1]; repeatable axis "
        "(implies --timing-driven; default: 0.5)",
    )
    run.add_argument(
        "--routing-cache",
        action="store_true",
        help="warm-start PathFinder across channel-width ladders from cached "
        "routing trees (requires --store; quality-gated, not bit-identical)",
    )
    run.add_argument("--workers", type=int, default=1, help="pool size (default: 1)")
    run.add_argument(
        "--executor",
        choices=available_executors(),
        help="execution backend (default: serial, or process when --workers > 1)",
    )
    run.add_argument("--store", metavar="DIR", help="result-store directory (enables caching)")
    run.add_argument(
        "--artifacts",
        metavar="DIR",
        help="stage-artifact store directory: checkpoint every executed "
        "flow's stage boundaries there (enables export --bitstreams, "
        "repro-lint --artifacts and flow resumes)",
    )
    run.add_argument(
        "--no-placement-cache",
        action="store_true",
        help="disable placement caching / incremental re-route",
    )
    run.add_argument(
        "--timeout",
        type=_positive_float,
        metavar="SECONDS",
        help="per-point wall-clock budget; overruns record status=timeout "
        "and are never cached",
    )
    run.add_argument(
        "--retries",
        type=_attempts,
        default=1,
        metavar="N",
        help="total attempts per point for transient failures and timeouts "
        "(default: 1 = no retries)",
    )
    run.add_argument(
        "--backoff",
        type=_nonnegative_float,
        default=0.0,
        metavar="SECONDS",
        help="base delay of the deterministic exponential backoff between "
        "attempts (default: 0 = retry immediately)",
    )
    run.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop submitting after the first non-ok point; the rest of the "
        "grid records status=skipped",
    )
    run.add_argument(
        "--fallback",
        action="append",
        choices=("serial", "thread", "process"),
        metavar="NAME",
        help="executor degradation ladder, engaged in order after repeated "
        "worker-pool failures; repeatable (e.g. --fallback thread "
        "--fallback serial)",
    )
    run.add_argument(
        "--kernel",
        choices=("auto", "python", "numpy"),
        default="auto",
        help="compute backend for executed points (default: auto = numpy "
        "when importable, else pure python; both are bit-identical, so "
        "cache keys and summaries are unaffected)",
    )
    run.add_argument("--csv", metavar="PATH", help="also write the report as CSV")
    run.add_argument("--json", metavar="PATH", help="also write the report as JSON")
    run.add_argument("--quiet", action="store_true", help="print only the stats footer")
    run.add_argument(
        "--strict", action="store_true", help="exit 1 when any point errored"
    )
    run.set_defaults(handler=_cmd_run)

    stats = subparsers.add_parser(
        "stats", help="record counts, bytes and retired-fingerprint breakdown"
    )
    stats.add_argument("--store", metavar="DIR", required=True)
    stats.set_defaults(handler=_cmd_stats)

    gc = subparsers.add_parser("gc", help="delete retired-fingerprint records")
    gc.add_argument("--store", metavar="DIR", required=True)
    gc.add_argument(
        "--keep-latest",
        type=int,
        default=0,
        metavar="N",
        help="spare the N most recently written retired generations",
    )
    gc.add_argument("--dry-run", action="store_true", help="report without deleting")
    gc.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        help="after the fingerprint pass, evict oldest records until the "
        "store fits N bytes (artifact stores apply this bound themselves)",
    )
    gc.set_defaults(handler=_cmd_gc)

    export = subparsers.add_parser(
        "export", help="render the stored flow records without re-running"
    )
    export.add_argument("--store", metavar="DIR", required=True)
    export.add_argument("--csv", metavar="PATH", help="write CSV")
    export.add_argument("--json", metavar="PATH", help="write JSON")
    export.add_argument(
        "--all-generations",
        action="store_true",
        help="include retired-fingerprint records (points may then appear "
        "once per code generation)",
    )
    export.add_argument(
        "--text", action="store_true", help="print the text table (default when no file given)"
    )
    export.add_argument(
        "--artifacts",
        metavar="DIR",
        help="stage-artifact store directory (required by --bitstreams)",
    )
    export.add_argument(
        "--bitstreams",
        metavar="OUTDIR",
        help="write one .bit file per stored flow, re-rendered from the "
        "stage artifacts in --artifacts when no bitstream was checkpointed",
    )
    export.set_defaults(handler=_cmd_export)

    clear = subparsers.add_parser("clear", help="delete every record in the store")
    clear.add_argument("--store", metavar="DIR", required=True)
    clear.set_defaults(handler=_cmd_clear)

    chaos = subparsers.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign and verify every "
        "recovery path (see docs/robustness.md)",
    )
    chaos.add_argument(
        "--circuit",
        action="append",
        metavar="NAME",
        help="registry circuit name; repeatable (default: qdi_full_adder)",
    )
    chaos.add_argument(
        "--channel-width",
        action="append",
        type=int,
        metavar="N",
        help="routing channel width axis; repeatable (default: 8 and 10)",
    )
    chaos.add_argument(
        "--analysis-only",
        action="store_true",
        help="skip placement/routing/bitstream for a faster campaign",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, metavar="N", help="fault-plan seed (default: 0)"
    )
    chaos.add_argument(
        "--crash",
        type=_probability,
        default=0.0,
        metavar="P",
        help="per-attempt worker-crash probability",
    )
    chaos.add_argument(
        "--hang",
        type=_probability,
        default=0.0,
        metavar="P",
        help="per-attempt hang-past-timeout probability",
    )
    chaos.add_argument(
        "--oserror",
        type=_probability,
        default=0.0,
        metavar="P",
        help="per-attempt transient-OSError probability",
    )
    chaos.add_argument(
        "--torn",
        type=_probability,
        default=0.0,
        metavar="P",
        help="per-record torn-store-write probability (needs --store)",
    )
    chaos.add_argument(
        "--poison",
        action="append",
        metavar="LABEL",
        help="point label (circuit@WxH/cwN) that crashes on every attempt; "
        "repeatable -- each must end status=poisoned",
    )
    chaos.add_argument(
        "--faulted-attempts",
        type=_attempts,
        default=1,
        metavar="N",
        help="only the first N attempts of a point may fault (default: 1)",
    )
    chaos.add_argument(
        "--timeout",
        type=_positive_float,
        default=120.0,
        metavar="SECONDS",
        help="per-point wall-clock budget during the campaign (default: 120)",
    )
    chaos.add_argument(
        "--retries",
        type=_attempts,
        default=3,
        metavar="N",
        help="retry policy attempts during the campaign (default: 3)",
    )
    chaos.add_argument(
        "--max-point-crashes",
        type=_attempts,
        default=2,
        metavar="N",
        help="crashes a point survives before it is poisoned (default: 2)",
    )
    chaos.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="inner backend the chaos wrapper drives (default: serial)",
    )
    chaos.add_argument("--workers", type=int, default=1, help="pool size (default: 1)")
    chaos.add_argument(
        "--store",
        metavar="DIR",
        help="result-store directory for the chaos run (enables torn-write "
        "injection and the quarantine check)",
    )
    chaos.add_argument("--json", metavar="PATH", help="also write the campaign report as JSON")
    chaos.set_defaults(handler=_cmd_chaos)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
