"""Serial / process-parallel execution of sweep grids with result caching.

:class:`SweepRunner` takes a :class:`~repro.sweep.spec.SweepSpec` (or an
explicit point list), consults the content-addressed
:class:`~repro.sweep.store.SweepResultStore` for each point, executes the
misses -- in-process when ``workers <= 1`` (the serial fallback, bit-identical
to running :class:`~repro.cad.flow.CadFlow` by hand) or across a
``concurrent.futures`` process pool otherwise -- and returns a
:class:`SweepReport` with per-point outcomes plus cache hit/miss counters.

Flow failures (unroutable architecture, unplaceable design, ...) are captured
as ``status="error"`` records -- with the exception class and message -- rather
than aborting the sweep.  Most flow failures are deterministic and therefore
cacheable; mapping failures are deliberately *not* cached, so re-running a
sweep after fixing the mapper re-attempts the point instead of replaying the
stale error (the code-fingerprint cache key would retire the record anyway,
but an uncached error also survives e.g. a restored store snapshot).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.sweep.spec import SWEEP_SCHEMA_VERSION, SweepPoint, SweepSpec, as_points
from repro.sweep.store import SweepResultStore


def execute_point(point_data: Mapping[str, object]) -> dict[str, object]:
    """Run one sweep point (given as a plain dict) and return its record.

    Module-level and dict-in / dict-out so it pickles cleanly into worker
    processes.  Every failure mode of the flow is folded into the record.
    """
    # Imports stay inside the function so worker processes pay them lazily
    # and a broken optional subsystem cannot poison runner import time.
    from repro.cad.flow import CadFlow
    from repro.cad.techmap import MappingError
    from repro.circuits.registry import build_circuit

    point = SweepPoint.from_dict(point_data)
    record: dict[str, object] = {
        "version": SWEEP_SCHEMA_VERSION,
        "point": point.to_dict(),
        "label": point.label(),
    }
    try:
        circuit = build_circuit(point.circuit)
        flow = CadFlow(point.architecture, point.options)
        result = flow.run(circuit)
        record["status"] = "ok"
        record["summary"] = result.summary()
        record["error"] = None
        record["cacheable"] = True
    except Exception as exc:
        record["status"] = "error"
        record["summary"] = None
        record["error"] = {"type": type(exc).__name__, "message": str(exc)}
        # Flow-domain failures (unroutable, unplaceable, ...) are as
        # deterministic as successes and therefore cacheable.  Environmental
        # ones (disk full, out of memory) must be retried on the next run;
        # KeyError (unknown circuit) depends on the registry contents; and a
        # MappingError is what a mapper fix is *supposed* to change, so it is
        # recorded (class + message) but never cached -- the next run after a
        # fix re-attempts the point instead of replaying the old failure.
        record["cacheable"] = not isinstance(
            exc, (OSError, MemoryError, KeyError, MappingError)
        )
    return record


@dataclass
class SweepOutcome:
    """One executed (or cache-served) sweep point."""

    point: SweepPoint
    status: str
    summary: dict[str, object] | None
    error: dict[str, object] | None
    cached: bool

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def row(self) -> dict[str, object]:
        """A flat dict for tables / CSV; summary keys are inlined."""
        data: dict[str, object] = {
            "label": self.point.label(),
            "circuit": self.point.circuit,
            "status": self.status,
            "cached": self.cached,
        }
        if self.summary:
            data.update(self.summary)
            # The summary's own "circuit" key is the mapped design name,
            # which can differ from the registry name (e.g. the ripple
            # adders); keep both under distinct columns.
            data["design"] = self.summary.get("circuit")
            data["circuit"] = self.point.circuit
        if self.error:
            data["error"] = f"{self.error.get('type')}: {self.error.get('message')}"
        return data


@dataclass
class SweepReport:
    """Everything one :meth:`SweepRunner.run` call produced."""

    outcomes: list[SweepOutcome] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    @property
    def flow_executions(self) -> int:
        """Flows actually run in this call (== cache misses)."""
        return self.cache_misses

    @property
    def ok_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def error_count(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def rows(self) -> list[dict[str, object]]:
        return [outcome.row() for outcome in self.outcomes]

    def summaries(self) -> list[dict[str, object] | None]:
        """Per-point flow summaries (``None`` where the flow errored)."""
        return [outcome.summary for outcome in self.outcomes]

    def stats(self) -> dict[str, object]:
        return {
            "points": len(self.outcomes),
            "ok": self.ok_count,
            "errors": self.error_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "flow_executions": self.flow_executions,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 3),
        }


class SweepRunner:
    """Execute sweep grids against an optional on-disk result store.

    Parameters
    ----------
    store:
        A :class:`SweepResultStore`, a directory path to open one in, or
        ``None`` to disable caching entirely.
    workers:
        ``<= 1`` runs every miss in-process (serial fallback); ``> 1`` fans
        the misses out over a ``ProcessPoolExecutor``.
    """

    def __init__(
        self,
        store: SweepResultStore | str | None = None,
        workers: int = 1,
    ) -> None:
        if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
            store = SweepResultStore(store)
        self.store: SweepResultStore | None = store
        self.workers = max(1, int(workers))

    def run(
        self,
        spec_or_points: SweepSpec | Sequence[SweepPoint],
        progress: Callable[[str], None] | None = None,
    ) -> SweepReport:
        """Run every point of the grid, serving repeats from the store."""
        points = as_points(spec_or_points)
        started = time.perf_counter()
        report = SweepReport(workers=self.workers)

        keys = [point.key() for point in points]
        records: list[dict[str, object] | None] = [None] * len(points)
        miss_indices: list[int] = []
        for index, point in enumerate(points):
            cached = self.store.get(keys[index]) if self.store is not None else None
            if cached is not None and cached.get("version") == SWEEP_SCHEMA_VERSION:
                records[index] = cached
                report.cache_hits += 1
            else:
                miss_indices.append(index)
        report.cache_misses = len(miss_indices)
        if progress is not None:
            progress(
                f"sweep: {len(points)} points, {report.cache_hits} cached, "
                f"{report.cache_misses} to run on {self.workers} worker(s)"
            )

        if miss_indices:
            miss_payloads = [points[index].to_dict() for index in miss_indices]
            if self.workers > 1:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    fresh = list(pool.map(execute_point, miss_payloads))
            else:
                fresh = [execute_point(payload) for payload in miss_payloads]
            for index, record in zip(miss_indices, fresh):
                records[index] = record
                if self.store is not None and record.get("cacheable", True):
                    self.store.put(keys[index], record)

        missed = set(miss_indices)
        for index, (point, record) in enumerate(zip(points, records)):
            assert record is not None  # every index is either a hit or a miss
            report.outcomes.append(
                SweepOutcome(
                    point=point,
                    status=str(record.get("status", "error")),
                    summary=record.get("summary"),  # type: ignore[arg-type]
                    error=record.get("error"),  # type: ignore[arg-type]
                    cached=index not in missed,
                )
            )
        report.elapsed_s = time.perf_counter() - started
        return report
