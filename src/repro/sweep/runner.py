"""Pluggable execution of sweep grids with result and placement caching.

:class:`SweepRunner` takes a :class:`~repro.sweep.spec.SweepSpec` (or an
explicit point list), consults the content-addressed
:class:`~repro.sweep.store.SweepResultStore` for each point, executes the
misses on a named :class:`Executor` backend and returns a
:class:`SweepReport` with per-point outcomes plus cache hit/miss counters.

Executor backends
-----------------
Execution is behind the :class:`Executor` protocol (``submit`` / ``gather`` /
``shutdown``) so the fan-out strategy is orthogonal to the flow itself.
Three backends ship in-tree, selected by name through :class:`RunnerConfig`
(which is deliberately independent of :class:`~repro.cad.flow.FlowOptions`:
*how* points run never changes *what* they compute):

* ``serial`` -- in-process, bit-identical to running
  :class:`~repro.cad.flow.CadFlow` by hand; the reference semantics.
* ``thread`` -- a ``ThreadPoolExecutor``; the flow is pure Python so this
  buys little for compute-bound sweeps, but is the right backend for
  I/O-light mostly-cached sweeps (no process spawn or pickling cost).
* ``process`` -- a ``ProcessPoolExecutor``; true parallelism for cold
  compute-bound sweeps.  Payloads and records are plain dicts so they
  pickle cleanly.

Third-party backends (cluster schedulers, job queues) plug in via
:func:`register_executor`; anything honouring the protocol and calling
:func:`execute_point` on its workers produces records identical to the
serial backend.

Failure handling
----------------
Flow failures (unroutable architecture, unplaceable design, ...) are captured
as ``status="error"`` records -- with the exception class and message -- rather
than aborting the sweep.  Most flow failures are deterministic and therefore
cacheable; mapping failures are deliberately *not* cached, so re-running a
sweep after fixing the mapper re-attempts the point instead of replaying the
stale error (the code-fingerprint cache key would retire the record anyway,
but an uncached error also survives e.g. a restored store snapshot).

Supervision (timeouts, retries, crash recovery)
-----------------------------------------------
Cache misses run under a supervision loop (see ``docs/robustness.md``):

* a per-point wall-clock ``timeout_s`` is enforced for every in-tree backend
  (preemptively where the backend can wait with a deadline, cooperatively --
  by discarding an overrun result -- where it cannot), producing
  ``status="timeout"`` records that are never cached;
* **transient** failures (``OSError`` / ``MemoryError``, plus anything the
  executor infrastructure itself raises) are retried per the seeded
  :class:`RetryPolicy` with deterministic exponential backoff;
* a broken worker pool (``BrokenProcessPool`` and friends) no longer aborts
  the sweep: the pool is rebuilt, in-flight points are resubmitted, and a
  point that kills its worker more than ``max_point_crashes`` times is
  quarantined as ``status="poisoned"`` -- cached *with* its attempt history
  so ``repro-sweep stats`` can report it;
* an opt-in ``fallback`` ladder degrades the backend (e.g. process -> thread
  -> serial) after ``max_pool_rebuilds`` rebuilds of the same backend;
* ``fail_fast`` stops submitting after the first non-ok point and marks the
  rest ``status="skipped"``.

Third-party backends that only implement the minimal submit/gather protocol
keep the historical semantics (no timeout, no retry, no crash recovery);
supervision engages for any backend that also offers ``result(token,
timeout)`` (and, for crash recovery, ``rebuild()``).

Incremental re-route
--------------------
When a store is attached, successful placements are cached under
:meth:`~repro.sweep.spec.SweepPoint.placement_key`, which hashes only what
placement depends on (circuit + code fingerprint, fabric geometry, seed,
effort).  A later point differing only in routing-side options (channel
width, router iterations, ...) misses the flow-summary cache but *hits* the
placement cache: the runner injects the stored placement into
:meth:`CadFlow.run`, which skips annealing and goes straight to routing.
The summary then carries ``placement_cache_hit`` (``True``/``False``), and —
because placement is deterministic in its key — the re-routed result is
bit-identical to a cold run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.sweep.spec import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    SWEEP_SCHEMA_VERSION,
    SweepPoint,
    SweepSpec,
    as_points,
)
from repro.sweep.store import SweepResultStore

logger = logging.getLogger(__name__)

#: Exception classes whose flow failures are *environmental* rather than
#: deterministic: never cached, and retried in-run by the supervision loop
#: when the :class:`RetryPolicy` grants attempts.  ``TimeoutError`` is an
#: ``OSError`` subclass, so backend timeouts classify as transient too.
TRANSIENT_EXCEPTIONS = (OSError, MemoryError)


def _seed_trees_from_record(record: Mapping[str, object]) -> dict[str, list[str]] | None:
    """Warm-start trees (node names per net) from a routing-cache record.

    Current records embed the schema-versioned
    :meth:`~repro.cad.route.RoutingResult.to_dict` payload under
    ``"routing"``; records written before the artifact schema stored a bare
    ``"trees"`` mapping, which is still honoured so a pre-upgrade store keeps
    seeding.  Returns ``None`` when neither layout yields trees.
    """
    routing = record.get("routing")
    if isinstance(routing, Mapping):
        routed = routing.get("routed")
        if isinstance(routed, Mapping):
            trees = {
                str(net): [str(name) for name in entry.get("nodes", [])]
                for net, entry in routed.items()
                if isinstance(entry, Mapping)
            }
            if trees:
                return trees
    legacy = record.get("trees")
    if isinstance(legacy, Mapping):
        return {
            str(net): [str(name) for name in names]
            for net, names in legacy.items()
            if isinstance(names, (list, tuple))
        } or None
    return None


def execute_point(point_data: Mapping[str, object]) -> dict[str, object]:
    """Run one sweep point (given as a plain dict) and return its record.

    Module-level and dict-in / dict-out so it pickles cleanly into worker
    processes.  Every failure mode of the flow is folded into the record.

    Besides the :meth:`SweepPoint.to_dict` fields the payload may carry a
    ``placement_store`` key (a directory path): the worker then consults the
    placement cache before placing and persists any freshly computed
    placement after a successful flow.  Store writes are atomic, so parallel
    workers can share one directory.

    A ``routing_store`` key (same directory convention) additionally enables
    the **routing-tree warm-start cache**: under
    :meth:`SweepPoint.routing_base_key` — the point minus its swept fabric
    geometry (channel width and grid size) — the worker looks for a
    neighbouring fabric's legal routed trees (stored as node *names*) and
    seeds PathFinder with them, then persists its own trees after a
    successful route for the next rung of the ladder.  The summary carries
    ``routing_warm_started`` whenever a seed actually fired.

    An ``artifact_store`` key (a directory path) makes the worker checkpoint
    every stage boundary of each executed flow into a
    :class:`~repro.artifacts.ArtifactStore` there (see ``docs/artifacts.md``).
    The path is injected into the executed :class:`FlowOptions` only — it is
    excluded from ``FlowOptions.to_dict`` and therefore never perturbs cache
    keys or stored records.
    """
    # Imports stay inside the function so worker processes pay them lazily
    # and a broken optional subsystem cannot poison runner import time.
    from repro.cad.flow import CadFlow
    from repro.cad.place import Placement
    from repro.cad.techmap import MappingError
    from repro.circuits.registry import build_circuit
    from repro.fingerprint import code_fingerprint

    data = dict(point_data)
    placement_store_root = data.pop("placement_store", None)
    routing_store_root = data.pop("routing_store", None)
    artifact_store_root = data.pop("artifact_store", None)
    kernel = str(data.pop("kernel", "auto"))
    point = SweepPoint.from_dict(data)
    record: dict[str, object] = {
        "version": SWEEP_SCHEMA_VERSION,
        "kind": "flow",
        "fingerprint": code_fingerprint(),
        "point": point.to_dict(),
        "label": point.label(),
    }
    placement_store = (
        SweepResultStore(placement_store_root) if placement_store_root else None
    )
    routing_store = SweepResultStore(routing_store_root) if routing_store_root else None
    started = time.perf_counter()
    try:
        circuit = build_circuit(point.circuit)
        flow_options = point.options
        if artifact_store_root:
            flow_options = dataclasses.replace(
                flow_options, artifact_store=str(artifact_store_root)
            )
        if kernel != "auto":
            # Like artifact_store, the kernel is an execution-side knob:
            # injected into the executed options only, excluded from
            # to_dict(), so cache keys and stored summaries are identical
            # under either backend.
            flow_options = dataclasses.replace(flow_options, kernel=kernel)
        flow = CadFlow(point.architecture, flow_options)

        injected: Placement | None = None
        placement_key: str | None = None
        if placement_store is not None and point.options.run_placement:
            placement_key = point.placement_key()
            cached = placement_store.get(placement_key)
            if cached is not None and cached.get("kind") == "placement":
                try:
                    injected = Placement.from_dict(cached["placement"])  # type: ignore[arg-type]
                except (KeyError, TypeError, ValueError) as exc:
                    # Corrupt cached placement: fall back to placing, but
                    # observably -- the silent swallow used to hide cache
                    # corruption entirely.
                    injected = None
                    record["placement_cache_corrupt"] = True
                    logger.warning(
                        "corrupt placement-cache record %s for %s (%s: %s); "
                        "falling back to a fresh placement",
                        placement_key,
                        point.label(),
                        type(exc).__name__,
                        exc,
                    )

        routing_seed = None
        routing_key: str | None = None
        if (
            routing_store is not None
            and point.options.run_placement
            and point.options.run_routing
        ):
            routing_key = point.routing_base_key()
            cached_trees = routing_store.get(routing_key)
            if cached_trees is not None and cached_trees.get("kind") == "routing_trees":
                # Seed only across a genuine geometry step (channel width or
                # grid size); a record from the identical fabric means the
                # point would have hit the flow-summary cache anyway.
                # Legacy records predate the width/height keys, hence .get.
                same_geometry = (
                    cached_trees.get("channel_width")
                    == point.architecture.routing.channel_width
                    and cached_trees.get("width") == point.architecture.width
                    and cached_trees.get("height") == point.architecture.height
                )
                trees = _seed_trees_from_record(cached_trees)
                if not same_geometry and trees:
                    # Trees are stored as node names; the flow remaps them
                    # onto this fabric's RR graph and validates per net.
                    routing_seed = trees

        result = flow.run(circuit, placement=injected, routing_seed=routing_seed)

        if (
            routing_store is not None
            and routing_key is not None
            and result.routing is not None
            and result.routing.success
        ):
            routing_store.put(
                routing_key,
                {
                    "version": SWEEP_SCHEMA_VERSION,
                    "kind": "routing_trees",
                    "fingerprint": code_fingerprint(),
                    "circuit": point.circuit,
                    "channel_width": point.architecture.routing.channel_width,
                    "width": point.architecture.width,
                    "height": point.architecture.height,
                    # The full schema-versioned routing artifact; seed trees
                    # are extracted from it on read (the pre-artifact
                    # "trees" layout is still honoured there).
                    "routing": result.routing.to_dict(flow.rr_graph),
                },
            )

        if placement_store is not None and point.options.run_placement:
            if result.placement_cache_hit is None:
                result.placement_cache_hit = False  # cache consulted, missed
            if result.placement is not None and not result.placement_cache_hit:
                placement_store.put(
                    placement_key,  # type: ignore[arg-type]
                    {
                        "version": SWEEP_SCHEMA_VERSION,
                        "kind": "placement",
                        "fingerprint": code_fingerprint(),
                        "circuit": point.circuit,
                        "seed": point.options.placement_seed,
                        "placement": result.placement.to_dict(),
                    },
                )

        record["status"] = STATUS_OK
        record["summary"] = result.summary()
        # The backend that actually executed (resolved from the request, so
        # "auto" records what it bound to).  Summaries stay kernel-free.
        record["kernel"] = result.kernel
        record["error"] = None
        record["cacheable"] = True
        record["transient"] = False
    except Exception as exc:
        record["status"] = STATUS_ERROR
        record["summary"] = None
        record["error"] = {"type": type(exc).__name__, "message": str(exc)}
        # Flow-domain failures (unroutable, unplaceable, ...) are as
        # deterministic as successes and therefore cacheable.  Environmental
        # ones (disk full, out of memory) must be retried on the next run;
        # KeyError (unknown circuit) depends on the registry contents; and a
        # MappingError is what a mapper fix is *supposed* to change, so it is
        # recorded (class + message) but never cached -- the next run after a
        # fix re-attempts the point instead of replaying the old failure.
        record["cacheable"] = not isinstance(
            exc, TRANSIENT_EXCEPTIONS + (KeyError, MappingError)
        )
        # Transient (environmental) failures are additionally retried
        # *in-run* by the supervision loop when the RetryPolicy allows.
        record["transient"] = isinstance(exc, TRANSIENT_EXCEPTIONS)
    record["duration_s"] = round(time.perf_counter() - started, 6)
    # A single-attempt history; the supervision loop replaces it with the
    # full per-attempt trail when retries / crashes / timeouts occurred.
    record["attempts"] = [
        {
            "outcome": record["status"],
            "error": record["error"],
            "duration_s": record["duration_s"],
        }
    ]
    return record


# ----------------------------------------------------------------------
# Executor protocol and in-tree backends
# ----------------------------------------------------------------------
@runtime_checkable
class Executor(Protocol):
    """How sweep-point payloads get executed (submit / gather / shutdown).

    Implementations receive a picklable function plus one picklable payload
    per :meth:`submit` call and return an opaque token; :meth:`gather` turns
    a sequence of tokens back into results **in submission order**;
    :meth:`shutdown` releases any pool resources (always called, even when a
    point raised).  Register new backends with :func:`register_executor`.
    """

    def submit(
        self, fn: Callable[[Mapping[str, object]], dict[str, object]],
        payload: Mapping[str, object],
    ) -> object: ...

    def gather(self, tokens: Sequence[object]) -> list[dict[str, object]]: ...

    def shutdown(self) -> None: ...


class SerialExecutor:
    """In-process execution, one payload at a time, in submission order.

    The reference backend: bit-identical to calling the flow by hand, no
    pickling, exceptions propagate with their original tracebacks.  Work is
    deferred to :meth:`result` / :meth:`gather`, so the supervision loop's
    per-point timing measures the point itself, not queue wait.  Timeouts
    are **cooperative** here -- an in-process flow cannot be preempted, so
    an overrun is detected (and the result discarded) after the fact.
    """

    def submit(self, fn, payload):
        return (fn, payload)

    def gather(self, tokens):
        return [fn(payload) for fn, payload in tokens]

    def result(self, token, timeout: float | None = None):
        fn, payload = token
        return fn(payload)

    def rebuild(self) -> None:
        pass  # nothing pooled to rebuild

    def shutdown(self) -> None:
        pass


class _PoolExecutor:
    """Shared submit/gather/result/rebuild over a ``concurrent.futures`` pool.

    Holding the pool *factory* rather than the pool itself is what makes
    :meth:`rebuild` possible: when a worker dies and the pool reports
    itself broken, the supervision loop discards it and builds a fresh one
    without losing the executor's identity (or, for wrappers such as the
    chaos executor, their fault-plan state).
    """

    def __init__(self, pool_factory) -> None:
        self._pool_factory = pool_factory
        self._pool = pool_factory()

    def submit(self, fn, payload) -> Future:
        return self._pool.submit(fn, payload)

    def gather(self, tokens):
        return [token.result() for token in tokens]

    def result(self, token, timeout: float | None = None):
        return token.result(timeout)

    def rebuild(self) -> None:
        # The broken pool's shutdown returns immediately; cancel_futures
        # clears anything still queued (the supervisor resubmits it).
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._pool_factory()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ThreadExecutor(_PoolExecutor):
    """``ThreadPoolExecutor`` backend: cheap fan-out for I/O-light sweeps.

    The flow is CPU-bound pure Python, so threads do not speed up cold
    sweeps; they shine when most points are served from the store and the
    remaining work is file I/O, or when payloads are unpicklable.
    """

    def __init__(self, workers: int) -> None:
        super().__init__(lambda: ThreadPoolExecutor(max_workers=max(1, workers)))


class ProcessExecutor(_PoolExecutor):
    """``ProcessPoolExecutor`` backend: true parallelism for cold sweeps."""

    def __init__(self, workers: int) -> None:
        super().__init__(lambda: ProcessPoolExecutor(max_workers=max(1, workers)))


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the supervision loop re-attempts a failed point.

    Only **transient** outcomes are retried: environmental flow failures
    (``OSError`` / ``MemoryError``, marked ``transient`` in the record),
    per-point timeouts, and executor-infrastructure errors.  Deterministic
    flow failures (unroutable, unplaceable, mapping errors...) would fail
    identically on every attempt, so they are never retried.  Worker
    crashes are governed separately by ``RunnerConfig.max_point_crashes``
    -- a crashed point is always resubmitted until it poisons out.

    The policy is fully serializable and its backoff is **deterministic**:
    the jitter for retry *n* of a given point is derived from
    ``(seed, token, n)`` via sha256, so a replayed sweep sleeps the exact
    same schedule (the chaos harness relies on this for bit-identical
    replays).
    """

    #: Total attempts per point (1 = no retries).
    max_attempts: int = 1
    #: Base delay before the first retry; 0 disables backoff entirely.
    backoff_s: float = 0.0
    #: Exponential growth factor between consecutive retries.
    backoff_factor: float = 2.0
    #: Fractional +- jitter applied to each delay (0.1 = +-10%).
    jitter: float = 0.1
    #: Seed for the deterministic jitter stream.
    seed: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RetryPolicy":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)  # type: ignore[arg-type]

    def delay_s(self, retry: int, token: str = "") -> float:
        """Deterministic backoff before the *retry*-th re-attempt (1-based)."""
        if self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * (self.backoff_factor ** max(0, retry - 1))
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}|{token}|{retry}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class RunnerConfig:
    """How a sweep executes -- independent of what it computes.

    Deliberately separate from :class:`~repro.cad.flow.FlowOptions`: executor
    choice, worker count and the supervision knobs never enter cache keys,
    so the same grid run on any backend shares one store.
    """

    executor: str = "serial"
    workers: int = 1
    #: Per-point wall-clock budget in seconds; ``None`` disables the check.
    #: Pool backends enforce it preemptively (the result wait times out);
    #: the serial backend detects overruns cooperatively after the fact.
    #: Either way the point records ``status="timeout"`` and is never cached.
    timeout_s: float | None = None
    #: Transient-failure retry policy (attempts, deterministic backoff).
    retry: RetryPolicy = RetryPolicy()
    #: A point that breaks the worker pool more than this many times is
    #: quarantined as ``status="poisoned"`` instead of being resubmitted.
    max_point_crashes: int = 2
    #: Pool rebuilds tolerated per backend before the opt-in ``fallback``
    #: ladder degrades to the next backend (when one is configured).
    max_pool_rebuilds: int = 3
    #: Opt-in graceful-degradation ladder, e.g. ``("thread", "serial")``.
    fallback: tuple[str, ...] = ()
    #: Stop submitting after the first non-ok point; the rest of the grid
    #: is recorded as ``status="skipped"``.
    fail_fast: bool = False

    @classmethod
    def from_workers(cls, workers: int, executor: str | None = None) -> "RunnerConfig":
        """The historical ``workers`` contract: ``<= 1`` serial, else process."""
        workers = max(1, int(workers))
        if executor is None:
            executor = "process" if workers > 1 else "serial"
        return cls(executor=executor, workers=workers)


_EXECUTOR_FACTORIES: dict[str, Callable[[RunnerConfig], Executor]] = {}


def register_executor(name: str, factory: Callable[[RunnerConfig], Executor]) -> None:
    """Register an executor backend under *name* (overwrites silently).

    *factory* takes the :class:`RunnerConfig` and returns an object honouring
    the :class:`Executor` protocol.  This is the hook for third-party cluster
    or job-queue backends; in-tree names are ``serial``, ``thread`` and
    ``process``.
    """
    _EXECUTOR_FACTORIES[name] = factory


def available_executors() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_EXECUTOR_FACTORIES))


def check_executor(name: str) -> None:
    """Raise ``ValueError`` unless *name* is a registered backend."""
    if name not in _EXECUTOR_FACTORIES:
        raise ValueError(
            f"unknown executor {name!r}; "
            f"registered: {', '.join(available_executors())}"
        )


def create_executor(config: RunnerConfig) -> Executor:
    """Instantiate the backend *config* names."""
    check_executor(config.executor)
    return _EXECUTOR_FACTORIES[config.executor](config)


register_executor("serial", lambda config: SerialExecutor())
register_executor("thread", lambda config: ThreadExecutor(config.workers))
register_executor("process", lambda config: ProcessExecutor(config.workers))


# ----------------------------------------------------------------------
# Supervision: timeouts, retries, crash recovery, poisoning, fallback
# ----------------------------------------------------------------------
class _PointRun:
    """Mutable supervision state for one cache-missed point."""

    __slots__ = ("payload", "point", "attempts", "failures", "crashes", "record")

    def __init__(self, payload: dict[str, object], point: SweepPoint) -> None:
        self.payload = payload
        self.point = point
        #: Full per-attempt trail: ``{"outcome", "error", "duration_s"}``.
        self.attempts: list[dict[str, object]] = []
        #: Attempts consumed against ``RetryPolicy.max_attempts`` (timeouts,
        #: transient flow errors, infrastructure errors -- NOT crashes).
        self.failures = 0
        #: Worker-pool breakages blamed on this point (poison budget).
        self.crashes = 0
        self.record: dict[str, object] | None = None


class _Supervisor:
    """Drive cache misses through a backend with fault tolerance.

    One supervisor lives for the whole :meth:`SweepRunner.run` call (both
    placement-dedup waves share its backend, crash counters and fail-fast
    trip wire).  Backends without a ``result(token, timeout)`` method --
    minimal third-party registrations -- run on the historical
    submit/gather path with none of the supervision semantics.
    """

    def __init__(self, config: RunnerConfig) -> None:
        ladder = [config.executor, *config.fallback]
        for name in ladder:
            check_executor(name)
        self.config = config
        self._ladder = ladder
        self._rung = 0
        self.backend: Executor = self._create(config.executor)
        self.executor_name = config.executor
        self.pool_rebuilds = 0
        self.fallbacks: list[str] = []
        self._rebuilds_this_backend = 0
        self._submit_failures = 0
        self._tripped = False  # fail_fast fired

    # -- backend lifecycle --------------------------------------------
    def _create(self, name: str) -> Executor:
        return _EXECUTOR_FACTORIES[name](
            dataclasses.replace(self.config, executor=name)
        )

    @property
    def supervised(self) -> bool:
        return hasattr(self.backend, "result")

    def shutdown(self) -> None:
        self.backend.shutdown()

    def _note_pool_failure(self) -> None:
        """Rebuild the broken pool, degrading down the ladder when due."""
        self.pool_rebuilds += 1
        self._rebuilds_this_backend += 1
        if (
            self._rebuilds_this_backend > self.config.max_pool_rebuilds
            and self._rung + 1 < len(self._ladder)
        ):
            self._rung += 1
            name = self._ladder[self._rung]
            try:
                self.backend.shutdown()
            except Exception:  # the pool is broken; releasing is best-effort
                pass
            self.backend = self._create(name)
            self.executor_name = name
            self.fallbacks.append(name)
            self._rebuilds_this_backend = 0
            logger.warning(
                "worker pool failed %d time(s); falling back to the %r backend",
                self.pool_rebuilds,
                name,
            )
            return
        rebuild = getattr(self.backend, "rebuild", None)
        if rebuild is not None:
            rebuild()
        else:  # no rebuild hook: recreate from the factory
            try:
                self.backend.shutdown()
            except Exception:
                pass
            self.backend = self._create(self._ladder[self._rung])

    def _note_submit_failure(self) -> None:
        """A pool that breaks before accepting work attaches no blame --
        but it must not loop forever either."""
        self._submit_failures += 1
        budget = (self.config.max_pool_rebuilds + 1) * len(self._ladder) + 4
        if self._submit_failures > budget:
            raise BrokenExecutor(
                f"worker pool keeps breaking before accepting work "
                f"(gave up after {self.pool_rebuilds} rebuild(s)); "
                f"run with executor='serial' to bypass pooling"
            )
        self._note_pool_failure()

    # -- record construction ------------------------------------------
    def _attempt(
        self,
        run: _PointRun,
        outcome: str,
        error: dict[str, object] | None,
        duration_s: float,
    ) -> None:
        run.attempts.append(
            {"outcome": outcome, "error": error, "duration_s": round(duration_s, 6)}
        )

    def _stub(
        self,
        run: _PointRun,
        status: str,
        error: dict[str, object] | None,
        cacheable: bool,
        transient: bool,
    ) -> dict[str, object]:
        from repro.fingerprint import code_fingerprint

        return {
            "version": SWEEP_SCHEMA_VERSION,
            "kind": "flow",
            "fingerprint": code_fingerprint(),
            "point": run.point.to_dict(),
            "label": run.point.label(),
            "status": status,
            "summary": None,
            "error": error,
            "cacheable": cacheable,
            "transient": transient,
            "duration_s": round(
                sum(float(a.get("duration_s") or 0.0) for a in run.attempts), 6
            ),
            "attempts": run.attempts,
        }

    def _finalise(self, run: _PointRun, record: dict[str, object]) -> None:
        record["attempts"] = run.attempts
        run.record = record
        if self.config.fail_fast and record.get("status") != STATUS_OK:
            self._tripped = True

    def _finalise_skipped(self, run: _PointRun) -> None:
        run.record = self._stub(
            run,
            STATUS_SKIPPED,
            {
                "type": "FailFast",
                "message": "sweep stopped by fail_fast before this point ran",
            },
            cacheable=False,
            transient=False,
        )

    # -- the supervision loop -----------------------------------------
    def run_wave(
        self, entries: Sequence[tuple[dict[str, object], SweepPoint]]
    ) -> list[dict[str, object]]:
        """Execute one wave of payloads; returns records in entry order."""
        runs = [_PointRun(payload, point) for payload, point in entries]
        if not self.supervised:
            # Historical minimal-protocol path: no timeout, no retry, no
            # crash recovery.  Records come back exactly as executed.
            tokens = [self.backend.submit(execute_point, run.payload) for run in runs]
            return list(self.backend.gather(tokens))

        pending = list(runs)
        while pending:
            if self._tripped:
                for run in pending:
                    self._finalise_skipped(run)
                break
            batch, pending = pending, []
            # Deterministic backoff: one sleep per resubmission round, the
            # longest of the batch's per-point delays.
            delay = max(
                (
                    self.config.retry.delay_s(len(run.attempts), run.point.label())
                    for run in batch
                    if run.attempts
                ),
                default=0.0,
            )
            if delay > 0:
                time.sleep(delay)
            tokens: list[object] = []
            accepted = True
            for run in batch:
                try:
                    tokens.append(self.backend.submit(execute_point, run.payload))
                except BrokenExecutor:
                    self._note_submit_failure()
                    accepted = False
                    break
            if not accepted:
                pending = batch  # nobody ran; resubmit the whole batch
                continue
            for index, run in enumerate(batch):
                if self._tripped:
                    self._finalise_skipped(run)
                    continue
                waited = time.perf_counter()
                try:
                    record = self.backend.result(tokens[index], self.config.timeout_s)  # type: ignore[attr-defined]
                except TimeoutError:
                    self._on_timeout(run, time.perf_counter() - waited, pending)
                except BrokenExecutor as exc:
                    # The pool died under this point: blame it, rebuild, and
                    # resubmit everything the breakage took down with it.
                    self._on_crash(run, exc, time.perf_counter() - waited, pending)
                    pending.extend(batch[index + 1 :])
                    break
                except Exception as exc:
                    self._on_infra_error(run, exc, time.perf_counter() - waited, pending)
                else:
                    self._on_record(run, record, pending)
        return [run.record for run in runs]  # type: ignore[misc]

    def _retryable(self, run: _PointRun) -> bool:
        return run.failures < self.config.retry.max_attempts

    def _on_timeout(self, run: _PointRun, elapsed: float, pending: list) -> None:
        budget = self.config.timeout_s
        error = {
            "type": "TimeoutError",
            "message": f"point exceeded the {budget:g}s wall-clock budget"
            if budget is not None
            else "point reported a hang",
        }
        run.failures += 1
        self._attempt(run, STATUS_TIMEOUT, error, elapsed)
        if self._retryable(run):
            pending.append(run)
        else:
            self._finalise(
                run,
                self._stub(run, STATUS_TIMEOUT, error, cacheable=False, transient=True),
            )

    def _on_crash(
        self, run: _PointRun, exc: BaseException, elapsed: float, pending: list
    ) -> None:
        run.crashes += 1
        error = {
            "type": type(exc).__name__,
            "message": str(exc) or "worker pool broke while this point ran",
        }
        self._attempt(run, "crash", error, elapsed)
        self._note_pool_failure()
        if run.crashes > self.config.max_point_crashes:
            self._finalise(
                run,
                self._stub(
                    run,
                    STATUS_POISONED,
                    {
                        "type": "WorkerCrash",
                        "message": (
                            f"point killed its worker {run.crashes} time(s); "
                            f"quarantined as poisoned"
                        ),
                    },
                    # Poisoned records ARE cached, with their attempt
                    # history: stats() reports them, and a deliberate
                    # gc/clear (or a code-fingerprint change) re-arms them.
                    cacheable=True,
                    transient=False,
                ),
            )
        else:
            pending.append(run)

    def _on_infra_error(
        self, run: _PointRun, exc: BaseException, elapsed: float, pending: list
    ) -> None:
        # The executor infrastructure (not the flow) failed: pickling, IPC,
        # an injected chaos fault...  Always transient, never cached.
        error = {"type": type(exc).__name__, "message": str(exc)}
        run.failures += 1
        self._attempt(run, STATUS_ERROR, error, elapsed)
        if self._retryable(run):
            pending.append(run)
        else:
            self._finalise(
                run,
                self._stub(run, STATUS_ERROR, error, cacheable=False, transient=True),
            )

    def _on_record(
        self, run: _PointRun, record: dict[str, object], pending: list
    ) -> None:
        duration = float(record.get("duration_s") or 0.0)
        error = record.get("error")
        if (
            self.config.timeout_s is not None
            and duration > self.config.timeout_s
        ):
            # Cooperative overrun (the serial backend cannot preempt): the
            # result arrived but blew the budget, so it is discarded.
            run.failures += 1
            timeout_error = {
                "type": "TimeoutError",
                "message": (
                    f"point ran {duration:.3f}s against the "
                    f"{self.config.timeout_s:g}s wall-clock budget"
                ),
            }
            self._attempt(run, STATUS_TIMEOUT, timeout_error, duration)
            if self._retryable(run):
                pending.append(run)
            else:
                self._finalise(
                    run,
                    self._stub(
                        run, STATUS_TIMEOUT, timeout_error, cacheable=False, transient=True
                    ),
                )
            return
        self._attempt(run, str(record.get("status", STATUS_ERROR)), error, duration)  # type: ignore[arg-type]
        if (
            record.get("status") == STATUS_ERROR
            and record.get("transient")
        ):
            run.failures += 1
            if self._retryable(run):
                pending.append(run)
                return
        self._finalise(run, record)


@dataclass
class SweepOutcome:
    """One executed (or cache-served) sweep point."""

    point: SweepPoint
    status: str
    summary: dict[str, object] | None
    error: dict[str, object] | None
    cached: bool
    #: Per-attempt trail (``outcome`` / ``error`` / ``duration_s`` each);
    #: empty for records predating the supervised runner.
    attempts: list[dict[str, object]] = field(default_factory=list)
    #: Wall-clock seconds of the recorded (final) flow execution.
    duration_s: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retried(self) -> bool:
        """Whether this point needed more than one attempt."""
        return len(self.attempts) > 1

    def row(self) -> dict[str, object]:
        """A flat dict for tables / CSV; summary keys are inlined."""
        data: dict[str, object] = {
            "label": self.point.label(),
            "circuit": self.point.circuit,
            "status": self.status,
            "cached": self.cached,
            "attempts": max(1, len(self.attempts)),
            "duration_s": self.duration_s,
        }
        if self.summary:
            data.update(self.summary)
            # The summary's own "circuit" key is the mapped design name,
            # which can differ from the registry name (e.g. the ripple
            # adders); keep both under distinct columns.
            data["design"] = self.summary.get("circuit")
            data["circuit"] = self.point.circuit
        if self.error:
            data["error"] = f"{self.error.get('type')}: {self.error.get('message')}"
        return data


@dataclass
class SweepReport:
    """Everything one :meth:`SweepRunner.run` call produced."""

    outcomes: list[SweepOutcome] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    executor: str = "serial"
    elapsed_s: float = 0.0
    #: Worker-pool rebuilds the supervision loop performed this run.
    pool_rebuilds: int = 0
    #: Fallback-ladder backends engaged, in order (empty: none needed).
    fallbacks: list[str] = field(default_factory=list)

    @property
    def flow_executions(self) -> int:
        """Flows actually run in this call (== cache misses)."""
        return self.cache_misses

    @property
    def ok_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def error_count(self) -> int:
        """Every non-ok outcome (errors, timeouts, poisoned, skipped)."""
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def _status_count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def timeout_count(self) -> int:
        return self._status_count(STATUS_TIMEOUT)

    @property
    def poisoned_count(self) -> int:
        return self._status_count(STATUS_POISONED)

    @property
    def skipped_count(self) -> int:
        return self._status_count(STATUS_SKIPPED)

    @property
    def retried_count(self) -> int:
        """Points that needed more than one attempt."""
        return sum(1 for outcome in self.outcomes if outcome.retried)

    def rows(self) -> list[dict[str, object]]:
        return [outcome.row() for outcome in self.outcomes]

    def summaries(self) -> list[dict[str, object] | None]:
        """Per-point flow summaries (``None`` where the flow errored)."""
        return [outcome.summary for outcome in self.outcomes]

    def stats(self) -> dict[str, object]:
        return {
            "points": len(self.outcomes),
            "ok": self.ok_count,
            "errors": self.error_count,
            "timeouts": self.timeout_count,
            "poisoned": self.poisoned_count,
            "skipped": self.skipped_count,
            "retried": self.retried_count,
            "pool_rebuilds": self.pool_rebuilds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "flow_executions": self.flow_executions,
            "workers": self.workers,
            "executor": self.executor,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def report_from_records(
    records: Iterable[tuple[str, Mapping[str, object]]],
    current_fingerprint: str | None = None,
) -> SweepReport:
    """Rebuild a :class:`SweepReport` from stored flow records.

    This is what ``repro-sweep export`` uses: every readable ``kind="flow"``
    record (placement records are skipped) becomes a cached outcome, so a
    populated store can be rendered to CSV/JSON/text without re-running
    anything.  Records are sorted by label for a stable export order.

    A store spanning a code edit holds several *generations* of the same
    points; pass *current_fingerprint* to keep only records stamped with it
    (what the CLI does by default) -- otherwise every generation is included
    and points can appear once per generation.
    """
    report = SweepReport(executor="store")
    for _key, record in records:
        if record.get("kind", "flow") != "flow":
            continue
        if (
            current_fingerprint is not None
            and record.get("fingerprint") != current_fingerprint
        ):
            continue
        point_data = record.get("point")
        if not isinstance(point_data, Mapping):
            continue
        try:
            point = SweepPoint.from_dict(point_data)
        except (KeyError, TypeError, ValueError):
            continue
        report.outcomes.append(
            SweepOutcome(
                point=point,
                status=str(record.get("status", "error")),
                summary=record.get("summary"),  # type: ignore[arg-type]
                error=record.get("error"),  # type: ignore[arg-type]
                cached=True,
                attempts=list(record.get("attempts") or []),  # type: ignore[arg-type]
                duration_s=record.get("duration_s"),  # type: ignore[arg-type]
            )
        )
    report.outcomes.sort(key=lambda outcome: outcome.point.label())
    report.cache_hits = len(report.outcomes)
    return report


class SweepRunner:
    """Execute sweep grids against an optional on-disk result store.

    Parameters
    ----------
    store:
        A :class:`SweepResultStore`, a directory path to open one in, or
        ``None`` to disable caching entirely.
    workers:
        Pool size for the parallel backends.  Without an explicit
        ``executor`` the historical contract applies: ``<= 1`` runs serial,
        ``> 1`` selects the process backend.
    executor:
        Backend name (``serial`` / ``thread`` / ``process`` or anything
        registered via :func:`register_executor`); overrides the
        workers-based default.  A full :class:`RunnerConfig` may be passed
        instead of the two scalars via ``config``.
    placement_cache:
        When a store is attached, also cache placements and re-route
        incrementally on routing-only option changes (adds the
        ``placement_cache_hit`` summary key on placement-running sweeps).
        Disable for summaries bit-identical to store-less runs.
    routing_cache:
        When a store is attached, additionally cache each point's legal
        routed trees under :meth:`SweepPoint.routing_base_key` and seed
        PathFinder with a neighbouring channel width's trees (the
        **warm-start cache** for channel-width ladders).  Off by default:
        warm-started routings are legal and quality-gated but not
        bit-identical to cold ones, so enabling it trades strict summary
        determinism for ladder throughput (the summary records the trade via
        ``routing_warm_started``).
    artifacts:
        Directory of an :class:`~repro.artifacts.ArtifactStore`; each
        executed flow then checkpoints its stage boundaries there (mapped /
        packed / placement / routing / timing / bitstream), enabling
        ``repro-sweep export --bitstreams``, ``repro-lint --artifacts`` and
        out-of-band flow resumes.  Purely additive: summaries, records and
        cache keys are byte-identical with or without it.
    kernel:
        Kernel backend for every executed flow's placer/router hot paths
        (``"auto"`` / ``"python"`` / ``"numpy"``, see
        :mod:`repro.cad.kernels`).  Execution-side like ``artifacts``: both
        backends are bit-identical, so cache keys and summaries never
        depend on it; each record reports the backend that computed it
        under its ``kernel`` key.
    """

    def __init__(
        self,
        store: SweepResultStore | str | None = None,
        workers: int = 1,
        executor: str | None = None,
        config: RunnerConfig | None = None,
        placement_cache: bool = True,
        routing_cache: bool = False,
        artifacts: str | None = None,
        kernel: str = "auto",
    ) -> None:
        from repro.cad.kernels import KERNELS

        if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
            store = SweepResultStore(store)
        self.store: SweepResultStore | None = store
        if config is None:
            config = RunnerConfig.from_workers(workers, executor)
        elif workers != 1 or executor is not None:
            raise ValueError(
                "pass either config or the workers/executor scalars, not both"
            )
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.config = config
        self.placement_cache = placement_cache
        self.routing_cache = routing_cache
        self.artifacts = str(artifacts) if artifacts is not None else None
        self.kernel = kernel

    @property
    def workers(self) -> int:
        return self.config.workers

    def run(
        self,
        spec_or_points: SweepSpec | Sequence[SweepPoint],
        progress: Callable[[str], None] | None = None,
    ) -> SweepReport:
        """Run every point of the grid, serving repeats from the store."""
        points = as_points(spec_or_points)
        started = time.perf_counter()
        # Fail fast on typo'd backend names even when every point is cached;
        # the fallback ladder must name real backends too.
        for name in (self.config.executor, *self.config.fallback):
            check_executor(name)
        report = SweepReport(workers=self.config.workers, executor=self.config.executor)

        keys = [point.key() for point in points]
        records: list[dict[str, object] | None] = [None] * len(points)
        miss_indices: list[int] = []
        for index, point in enumerate(points):
            cached = self.store.get(keys[index]) if self.store is not None else None
            if cached is not None and cached.get("version") == SWEEP_SCHEMA_VERSION:
                if not self.placement_cache:
                    # The record may come from a placement-caching run; strip
                    # the provenance marker so this runner's summaries stay
                    # bit-identical to store-less runs, as documented.
                    summary = cached.get("summary")
                    if isinstance(summary, dict) and "placement_cache_hit" in summary:
                        cached = dict(cached)
                        cached["summary"] = {
                            key: value
                            for key, value in summary.items()
                            if key != "placement_cache_hit"
                        }
                records[index] = cached
                report.cache_hits += 1
            else:
                miss_indices.append(index)
        report.cache_misses = len(miss_indices)
        if progress is not None:
            progress(
                f"sweep: {len(points)} points, {report.cache_hits} cached, "
                f"{report.cache_misses} to run on {self.config.executor}"
                f"[{self.config.workers} worker(s)]"
            )

        if miss_indices:
            placement_store = (
                str(self.store.root)
                if self.store is not None and self.placement_cache
                else None
            )
            routing_store = (
                str(self.store.root)
                if self.store is not None and self.routing_cache
                else None
            )
            miss_payloads: list[dict[str, object]] = []
            for index in miss_indices:
                payload = points[index].to_dict()
                if placement_store is not None:
                    payload["placement_store"] = placement_store
                if routing_store is not None:
                    payload["routing_store"] = routing_store
                if self.artifacts is not None:
                    payload["artifact_store"] = self.artifacts
                if self.kernel != "auto":
                    payload["kernel"] = self.kernel
                miss_payloads.append(payload)

            # Points sharing a placement key must not race: if they all ran
            # concurrently, each would miss the placement cache, re-anneal,
            # and record placement_cache_hit=False -- parallel runs would
            # compute (and cache) different records than serial ones.  So
            # misses run in two waves: one *leader* per placement key first
            # (grid order, matching what serial execution would pick), then
            # everyone else, who now deterministically hit the leader's
            # cached placement.
            leader_positions: list[int] = []
            follower_positions: list[int] = []
            if placement_store is not None:
                seen_placement_keys: set[str] = set()
                for position, index in enumerate(miss_indices):
                    point = points[index]
                    if point.options.run_placement:
                        placement_key = point.placement_key()
                        if placement_key in seen_placement_keys:
                            follower_positions.append(position)
                            continue
                        seen_placement_keys.add(placement_key)
                    leader_positions.append(position)
            else:
                leader_positions = list(range(len(miss_indices)))

            fresh: list[dict[str, object] | None] = [None] * len(miss_indices)
            supervisor = _Supervisor(self.config)
            try:
                for wave in (leader_positions, follower_positions):
                    if not wave:
                        continue
                    entries = [
                        (miss_payloads[position], points[miss_indices[position]])
                        for position in wave
                    ]
                    for position, record in zip(wave, supervisor.run_wave(entries)):
                        fresh[position] = record
            finally:
                supervisor.shutdown()
            report.pool_rebuilds = supervisor.pool_rebuilds
            report.fallbacks = list(supervisor.fallbacks)
            for index, record in zip(miss_indices, fresh):
                assert record is not None  # every position is in exactly one wave
                records[index] = record
                if self.store is not None and record.get("cacheable", True):
                    self.store.put(keys[index], record)

        missed = set(miss_indices)
        for index, (point, record) in enumerate(zip(points, records)):
            assert record is not None  # every index is either a hit or a miss
            report.outcomes.append(
                SweepOutcome(
                    point=point,
                    status=str(record.get("status", "error")),
                    summary=record.get("summary"),  # type: ignore[arg-type]
                    error=record.get("error"),  # type: ignore[arg-type]
                    cached=index not in missed,
                    attempts=list(record.get("attempts") or []),  # type: ignore[arg-type]
                    duration_s=record.get("duration_s"),  # type: ignore[arg-type]
                )
            )
        report.elapsed_s = time.perf_counter() - started
        return report
