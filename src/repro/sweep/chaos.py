"""Deterministic fault injection for the sweep supervision loop.

The chaos harness exists to *prove* the robustness contract in
``docs/robustness.md``: a sweep survives worker crashes, hangs past the
timeout, transient I/O errors and torn store writes, retrying and
quarantining per policy, and every point the faults did not ultimately
kill produces a summary bit-identical to a fault-free run.

Everything here is **seeded and deterministic**: whether attempt *n* of
point *label* faults (and how) is a pure function of
``(FaultPlan.seed, label, n)`` via sha256, exactly like the fuzzer's seed
streams and :meth:`RetryPolicy.delay_s`'s jitter.  Re-running a campaign
with the same plan replays the same faults in the same order, which is
what lets the test suite assert exact statuses and lets
``repro-sweep chaos`` be a CI smoke step instead of a flake machine.

Three pieces:

* :class:`FaultPlan` -- the serializable fault schedule (probabilities per
  fault kind, labels to poison outright, optional per-label scripts).
* :class:`ChaosExecutor` -- an :class:`~repro.sweep.runner.Executor`
  wrapper that injects faults at ``result()`` time: ``crash`` raises
  :class:`~concurrent.futures.BrokenExecutor` (what a dead worker pool
  raises), ``hang`` raises :class:`TimeoutError` (what a result wait past
  the deadline raises), ``oserror`` raises a transient :class:`OSError`.
  Its :meth:`ChaosExecutor.rebuild` preserves the plan state -- the
  supervision loop rebuilds the *inner* pool, so injected crash counts
  survive recovery exactly like a real poisoned point's would.
* :class:`ChaosStore` -- a :class:`~repro.sweep.store.SweepResultStore`
  that tears selected writes (truncating the record file at a seeded
  offset), exercising the checksum/quarantine read path.

:func:`run_campaign` wires them together and is what both the tests and
the ``repro-sweep chaos`` subcommand run.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.sweep.runner import (
    _EXECUTOR_FACTORIES,
    BrokenExecutor,
    Executor,
    RetryPolicy,
    RunnerConfig,
    SweepRunner,
    register_executor,
)
from repro.sweep.spec import SweepPoint, SweepSpec, as_points
from repro.sweep.store import SweepResultStore

#: The injectable fault kinds, in the order probabilities stack.
FAULT_KINDS = ("crash", "hang", "oserror")


def _unit(seed: int, *parts: str) -> float:
    """A deterministic float in ``[0, 1)`` from ``(seed, *parts)``."""
    digest = hashlib.sha256(
        "|".join((str(seed), *parts)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A serializable, seeded schedule of faults to inject.

    Whether attempt *n* of a point faults is decided by hashing
    ``(seed, label, n)`` into a unit float and comparing it against the
    stacked probabilities ``p_crash`` / ``p_hang`` / ``p_oserror`` -- so
    the *same* attempt of the same point always faults (or not) the same
    way, across processes and reruns.  By default only the **first**
    attempt of a point can fault (``faulted_attempts=1``): the retried
    attempt then succeeds, which is the shape of a transient fault and
    keeps campaigns convergent.  Raise ``faulted_attempts`` to test
    retry exhaustion.

    ``poison`` lists labels that crash on *every* attempt -- the
    guaranteed repeat-killers that must end ``status="poisoned"``.
    ``scripted`` pins exact per-label fault sequences (attempt 1, 2, ...;
    ``"none"`` for a clean attempt), for tests that need one precise
    trajectory rather than a probability.
    """

    seed: int = 0
    p_crash: float = 0.0
    p_hang: float = 0.0
    p_oserror: float = 0.0
    p_torn_write: float = 0.0
    faulted_attempts: int = 1
    poison: tuple[str, ...] = ()
    scripted: tuple[tuple[str, tuple[str, ...]], ...] = ()

    @classmethod
    def build(
        cls,
        scripted: Mapping[str, Sequence[str]] | None = None,
        poison: Sequence[str] = (),
        **kwargs: object,
    ) -> "FaultPlan":
        """Normalise mapping/sequence arguments into the frozen tuples."""
        return cls(
            poison=tuple(poison),
            scripted=tuple(
                (label, tuple(kinds)) for label, kinds in (scripted or {}).items()
            ),
            **kwargs,  # type: ignore[arg-type]
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "p_crash": self.p_crash,
            "p_hang": self.p_hang,
            "p_oserror": self.p_oserror,
            "p_torn_write": self.p_torn_write,
            "faulted_attempts": self.faulted_attempts,
            "poison": list(self.poison),
            "scripted": {label: list(kinds) for label, kinds in self.scripted},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        known = {
            f: data[f]
            for f in cls.__dataclass_fields__
            if f in data and f not in ("poison", "scripted")
        }
        return cls.build(
            scripted=data.get("scripted") or {},  # type: ignore[arg-type]
            poison=data.get("poison") or (),  # type: ignore[arg-type]
            **known,  # type: ignore[arg-type]
        )

    def fault_for(self, label: str, attempt: int) -> str | None:
        """The fault to inject into *attempt* (1-based) of *label*, if any."""
        for scripted_label, kinds in self.scripted:
            if scripted_label == label:
                if attempt <= len(kinds) and kinds[attempt - 1] in FAULT_KINDS:
                    return kinds[attempt - 1]
                return None
        if label in self.poison:
            return "crash"
        if attempt > self.faulted_attempts:
            return None
        unit = _unit(self.seed, "fault", label, str(attempt))
        cumulative = 0.0
        for kind, probability in zip(
            FAULT_KINDS, (self.p_crash, self.p_hang, self.p_oserror)
        ):
            cumulative += probability
            if unit < cumulative:
                return kind
        return None

    def torn_for(self, key: str) -> bool:
        """Whether the store write for *key* gets torn."""
        if self.p_torn_write <= 0:
            return False
        return _unit(self.seed, "torn", key) < self.p_torn_write

    def torn_offset(self, key: str, size: int) -> int:
        """The seeded byte offset the torn file is truncated at."""
        if size <= 1:
            return 0
        return int(_unit(self.seed, "offset", key) * (size - 1))


class _FaultToken:
    """A submit token whose ``result()`` raises instead of computing."""

    __slots__ = ("kind", "label", "attempt")

    def __init__(self, kind: str, label: str, attempt: int) -> None:
        self.kind = kind
        self.label = label
        self.attempt = attempt


def _label_of(payload: Mapping[str, object]) -> str:
    """The point label inside a worker payload (runner side-channel keys
    like ``placement_store`` stripped), or a stable fallback."""
    data = {
        key: value
        for key, value in payload.items()
        if key not in ("placement_store", "routing_store", "artifact_store")
    }
    try:
        return SweepPoint.from_dict(data).label()
    except Exception:
        return repr(sorted(payload))


class ChaosExecutor:
    """Wrap *inner* and inject :class:`FaultPlan` faults at result time.

    Faulted attempts never reach the inner backend at all: ``submit``
    hands back a :class:`_FaultToken` and ``result`` raises the mapped
    exception, so a "crash" looks to the supervision loop exactly like a
    worker pool dying mid-point (:class:`BrokenExecutor`), a "hang"
    exactly like a result wait blowing its deadline (:class:`TimeoutError`)
    and an "oserror" exactly like transient I/O trouble.  Attempt counts
    are per label and survive :meth:`rebuild` -- the supervision loop
    rebuilds the *inner* pool after a crash, and recreating the wrapper
    would amnesia the plan into re-injecting the same fault forever.
    """

    def __init__(self, inner: Executor, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        #: Faults injected so far, by kind.
        self.injected: Counter[str] = Counter()
        #: Labels that received at least one injected fault.
        self.faulted_labels: set[str] = set()
        #: Times the supervision loop asked for a pool rebuild.
        self.rebuilds = 0
        self._attempt_counts: Counter[str] = Counter()

    def submit(self, fn, payload):
        label = _label_of(payload)
        self._attempt_counts[label] += 1
        attempt = self._attempt_counts[label]
        kind = self.plan.fault_for(label, attempt)
        if kind is not None:
            return _FaultToken(kind, label, attempt)
        return self.inner.submit(fn, payload)

    def result(self, token, timeout: float | None = None):
        if isinstance(token, _FaultToken):
            self.injected[token.kind] += 1
            self.faulted_labels.add(token.label)
            if token.kind == "crash":
                raise BrokenExecutor(
                    f"chaos: worker crashed on {token.label} "
                    f"(attempt {token.attempt})"
                )
            if token.kind == "hang":
                raise TimeoutError(
                    f"chaos: {token.label} hung past the timeout "
                    f"(attempt {token.attempt})"
                )
            raise OSError(
                f"chaos: transient I/O fault on {token.label} "
                f"(attempt {token.attempt})"
            )
        return self.inner.result(token, timeout)  # type: ignore[attr-defined]

    def gather(self, tokens):
        return [self.result(token) for token in tokens]

    def rebuild(self) -> None:
        self.rebuilds += 1
        rebuild = getattr(self.inner, "rebuild", None)
        if rebuild is not None:
            rebuild()

    def shutdown(self) -> None:
        self.inner.shutdown()


@contextlib.contextmanager
def chaos_executor(
    plan: FaultPlan, inner: str = "serial", name: str = "chaos"
) -> Iterator[list[ChaosExecutor]]:
    """Temporarily register a ``ChaosExecutor`` backend called *name*.

    The inner backend is created from the same :class:`RunnerConfig` the
    runner passes down (so ``workers`` etc. apply), and every wrapper
    instance the factory builds is appended to the yielded list -- the
    caller reads injection counters off it after the run.
    """
    instances: list[ChaosExecutor] = []

    def factory(config: RunnerConfig) -> ChaosExecutor:
        inner_backend = _EXECUTOR_FACTORIES[inner](
            dataclasses.replace(config, executor=inner)
        )
        executor = ChaosExecutor(inner_backend, plan)
        instances.append(executor)
        return executor

    previous = _EXECUTOR_FACTORIES.get(name)
    register_executor(name, factory)
    try:
        yield instances
    finally:
        if previous is not None:
            _EXECUTOR_FACTORIES[name] = previous
        else:
            _EXECUTOR_FACTORIES.pop(name, None)


class ChaosStore(SweepResultStore):
    """A result store whose selected writes are torn mid-file.

    :meth:`put` writes the record normally (atomic temp + replace), then
    -- when the plan selects the key -- truncates the file at a seeded
    offset, simulating the torn/partial write a crash between ``write``
    and ``fsync`` leaves behind.  The next :meth:`get` of that key must
    quarantine-and-miss rather than raise; ``torn_keys`` records what was
    torn so campaigns know which records to expect in ``.quarantine/``.
    """

    def __init__(
        self, root, plan: FaultPlan, create: bool = True
    ) -> None:
        super().__init__(root, create=create)
        self.plan = plan
        self.torn_keys: list[str] = []

    def put(self, key: str, record: dict[str, object]) -> Path:
        path = super().put(key, record)
        if self.plan.torn_for(key):
            size = path.stat().st_size
            offset = self.plan.torn_offset(key, size)
            with path.open("r+b") as handle:
                handle.truncate(offset)
            self.torn_keys.append(key)
        return path


def run_campaign(
    spec_or_points: SweepSpec | Sequence[SweepPoint],
    plan: FaultPlan,
    store: str | None = None,
    executor: str = "serial",
    workers: int = 1,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    max_point_crashes: int = 2,
    fallback: tuple[str, ...] = (),
) -> dict[str, object]:
    """Run one seeded chaos campaign and audit every recovery path.

    Three steps: a fault-free serial baseline (no store), the chaos run
    (faults injected per *plan*, results written to *store* when given,
    torn writes applied there), and the audit -- every chaos outcome that
    still carries a summary must match the baseline **bit-identically**
    (``summaries_match``), repeat-killers must end ``poisoned``, torn
    records must land in ``.quarantine/`` on the next read.  The returned
    dict is JSON-serializable; ``repro-sweep chaos`` prints it and CI
    asserts on it.
    """
    points = as_points(spec_or_points)
    retry = retry or RetryPolicy()

    baseline = SweepRunner(store=None).run(points)
    expected = {
        outcome.point.label(): outcome.summary for outcome in baseline.outcomes
    }

    chaos_store = ChaosStore(store, plan) if store is not None else None
    with chaos_executor(plan, inner=executor) as instances:
        config = RunnerConfig(
            executor="chaos",
            workers=workers,
            timeout_s=timeout_s,
            retry=retry,
            max_point_crashes=max_point_crashes,
            fallback=fallback,
        )
        # placement_cache off: its summaries are documented bit-identical
        # to store-less runs, which is what makes the baseline comparison
        # exact (the cache would add a placement_cache_hit provenance key).
        report = SweepRunner(
            store=chaos_store, config=config, placement_cache=False
        ).run(points)

    injected: Counter[str] = Counter()
    faulted_labels: set[str] = set()
    rebuilds_seen = 0
    for instance in instances:
        injected.update(instance.injected)
        faulted_labels.update(instance.faulted_labels)
        rebuilds_seen += instance.rebuilds
    torn_keys = list(chaos_store.torn_keys) if chaos_store is not None else []

    mismatches = [
        outcome.point.label()
        for outcome in report.outcomes
        if outcome.summary is not None
        and outcome.summary != expected.get(outcome.point.label())
    ]
    quarantined = 0
    if chaos_store is not None:
        # Reading the torn keys exercises the quarantine path right here.
        for key in torn_keys:
            assert chaos_store.get(key) is None
        quarantined = len(chaos_store.quarantined())

    stats = report.stats()
    return {
        "points": len(points),
        "plan": plan.to_dict(),
        "statuses": {
            "ok": report.ok_count,
            "errors": stats["errors"],
            "timeouts": report.timeout_count,
            "poisoned": report.poisoned_count,
            "skipped": report.skipped_count,
            "retried": report.retried_count,
        },
        "injected": dict(injected),
        "faulted_labels": sorted(faulted_labels),
        "pool_rebuilds": report.pool_rebuilds,
        "fallbacks": list(report.fallbacks),
        "torn_keys": torn_keys,
        "quarantined": quarantined,
        "summary_mismatches": mismatches,
        "summaries_match": not mismatches,
        "completed": len(report.outcomes) == len(points),
    }
