"""Content-addressed on-disk store of flow summaries and placements.

Each record is one JSON file named after its content hash
(:meth:`SweepPoint.key` for flow summaries, :meth:`SweepPoint.placement_key`
for cached placements), sharded into 256 two-hex-digit subdirectories to keep
directories small.  Writes are atomic (temp file + ``os.replace``) so a
crashed or concurrent sweep never leaves a half-written record behind, and
records carry the full point description so a store can be audited without
the code that produced it.

Cache lifecycle: keys embed :func:`repro.fingerprint.code_fingerprint`, so a
behaviour-bearing source edit silently *retires* every old record (new keys
miss them) without deleting anything.  The runner stamps each record with the
fingerprint that produced it, which is what lets :meth:`SweepResultStore.stats`
count retired records and :meth:`SweepResultStore.gc` delete them.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator


class SweepResultStore:
    """A directory of ``<key[:2]>/<key>.json`` flow-summary records."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"store key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, object] | None:
        """The stored record for *key*, or ``None`` on a miss or corrupt file."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    def put(self, key: str, record: dict[str, object]) -> Path:
        """Atomically persist *record* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True, indent=1, default=str)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()) if self.root.is_dir() else []:
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def records(self) -> Iterator[tuple[str, dict[str, object]]]:
        """Every readable ``(key, record)`` pair, in key order."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield key, record

    # ------------------------------------------------------------------
    # Observability and garbage collection
    # ------------------------------------------------------------------
    def stats(self, current_fingerprint: str | None = None) -> dict[str, object]:
        """Record counts and on-disk footprint (bytes) of the store.

        Records keyed by retired code fingerprints are not reachable through
        current :meth:`SweepPoint.key` values but still live here; they are
        counted separately (``retired_records`` / ``retired_bytes``) against
        *current_fingerprint* (defaulting to this process's
        :func:`repro.fingerprint.code_fingerprint`) so :meth:`gc` has an
        honest before/after.  Records predating fingerprint stamping, or
        whose file is unreadable, count as retired.  The legacy ``records`` /
        ``bytes`` totals cover every record, current or not.
        """
        if current_fingerprint is None:
            from repro.fingerprint import code_fingerprint

            current_fingerprint = code_fingerprint()
        totals = {
            "records": 0,
            "bytes": 0,
            "current_records": 0,
            "current_bytes": 0,
            "retired_records": 0,
            "retired_bytes": 0,
            "placement_records": 0,
            "flow_records": 0,
        }
        fingerprints: set[str] = set()
        for key in self.keys():
            totals["records"] += 1
            size = 0
            try:
                size = self.path_for(key).stat().st_size
            except OSError:
                pass
            totals["bytes"] += size
            record = self.get(key)
            if record is None:
                # Unreadable/corrupt: a permanent cache miss, collectable by
                # gc(); counted as retired but as neither flow nor placement.
                totals["retired_records"] += 1
                totals["retired_bytes"] += size
                continue
            fingerprint = record.get("fingerprint")
            if isinstance(fingerprint, str):
                fingerprints.add(fingerprint)
            if record.get("kind") == "placement":
                totals["placement_records"] += 1
            else:
                totals["flow_records"] += 1
            if fingerprint == current_fingerprint:
                totals["current_records"] += 1
                totals["current_bytes"] += size
            else:
                totals["retired_records"] += 1
                totals["retired_bytes"] += size
        totals["fingerprints"] = len(fingerprints)
        totals["current_fingerprint"] = current_fingerprint
        return totals

    def gc(
        self,
        current_fingerprint: str | None = None,
        keep_latest: int = 0,
        dry_run: bool = False,
    ) -> dict[str, object]:
        """Delete records whose code fingerprint is not *current*.

        Retired records (fingerprint differs from *current_fingerprint*,
        which defaults to this process's
        :func:`repro.fingerprint.code_fingerprint`) are unreachable through
        any current cache key, so deleting them only reclaims disk.
        ``keep_latest=N`` spares the N most recently written retired
        *generations* (records grouped by their stored fingerprint, newest
        file mtime first) — a safety net for e.g. comparing results across a
        code change.  Records with no fingerprint stamp form their own
        "unknown" generation; **unreadable/corrupt** files (permanent cache
        misses, counted as retired by :meth:`stats`) are always collected,
        never spared.  ``dry_run`` reports without deleting.
        """
        if current_fingerprint is None:
            from repro.fingerprint import code_fingerprint

            current_fingerprint = code_fingerprint()
        # Group retired records into generations by stored fingerprint.
        # Keys are enumerated directly (not via records()) so corrupt files
        # are collectable too.
        generations: dict[str, list[str]] = {}
        newest_mtime: dict[str, float] = {}
        kept_current = 0
        unreadable: list[str] = []
        for key in self.keys():
            record = self.get(key)
            if record is None:
                unreadable.append(key)
                continue
            fingerprint = record.get("fingerprint")
            if fingerprint == current_fingerprint:
                kept_current += 1
                continue
            generation = fingerprint if isinstance(fingerprint, str) else "unknown"
            generations.setdefault(generation, []).append(key)
            try:
                mtime = self.path_for(key).stat().st_mtime
            except OSError:
                mtime = 0.0
            newest_mtime[generation] = max(newest_mtime.get(generation, 0.0), mtime)

        spared = set(
            sorted(generations, key=lambda g: newest_mtime[g], reverse=True)[
                : max(0, keep_latest)
            ]
        )
        removed = 0
        bytes_freed = 0
        kept_retired = 0
        collectable = list(unreadable)
        for generation, keys in generations.items():
            if generation in spared:
                kept_retired += len(keys)
                continue
            collectable.extend(keys)
        for key in collectable:
            path = self.path_for(key)
            try:
                size = path.stat().st_size
                if not dry_run:
                    path.unlink()
            except OSError:
                continue
            removed += 1
            bytes_freed += size
        return {
            "removed": removed,
            "bytes_freed": bytes_freed,
            "kept_current": kept_current,
            "kept_retired": kept_retired,
            "generations_removed": len(generations) - len(spared),
            "generations_kept": len(spared),
            "dry_run": dry_run,
        }

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
