"""Content-addressed on-disk store of flow summaries.

Each record is one JSON file named after the :meth:`SweepPoint.key` content
hash, sharded into 256 two-hex-digit subdirectories to keep directories
small.  Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent sweep never leaves a half-written record behind, and records carry
the full point description so a store can be audited without the code that
produced it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator


class SweepResultStore:
    """A directory of ``<key[:2]>/<key>.json`` flow-summary records."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"store key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, object] | None:
        """The stored record for *key*, or ``None`` on a miss or corrupt file."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    def put(self, key: str, record: dict[str, object]) -> Path:
        """Atomically persist *record* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True, indent=1, default=str)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()) if self.root.is_dir() else []:
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def stats(self) -> dict[str, int]:
        """Record count and on-disk footprint (bytes) of the store.

        Records keyed by retired code fingerprints are not reachable through
        current :meth:`SweepPoint.key` values but still live here; this is the
        observability hook for store audits and future garbage collection.
        """
        records = 0
        size = 0
        for key in self.keys():
            records += 1
            try:
                size += self.path_for(key).stat().st_size
            except OSError:
                pass
        return {"records": records, "bytes": size}

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
