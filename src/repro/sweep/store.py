"""Content-addressed on-disk store of flow summaries and placements.

Each record is one JSON file named after its content hash
(:meth:`SweepPoint.key` for flow summaries, :meth:`SweepPoint.placement_key`
for cached placements), sharded into 256 two-hex-digit subdirectories to keep
directories small.  Writes are atomic (temp file + ``os.replace``) so a
crashed or concurrent sweep never leaves a half-written record behind, and
records carry the full point description so a store can be audited without
the code that produced it.

Integrity: :meth:`SweepResultStore.put` stamps every record with a sha256
checksum (:data:`CHECKSUM_KEY`) over its canonical JSON form;
:meth:`SweepResultStore.get` verifies it and moves any file that fails to
decode — torn write, truncation, bit rot, checksum mismatch — into a
``.quarantine/`` sidecar directory instead of raising mid-sweep.  Quarantined
files are counted by :meth:`SweepResultStore.stats` and reaped by
:meth:`SweepResultStore.gc` (see ``docs/robustness.md``).

Cache lifecycle: keys embed :func:`repro.fingerprint.code_fingerprint`, so a
behaviour-bearing source edit silently *retires* every old record (new keys
miss them) without deleting anything.  The runner stamps each record with the
fingerprint that produced it, which is what lets :meth:`SweepResultStore.stats`
count retired records and :meth:`SweepResultStore.gc` delete them.

Concurrency: readers and writers need no coordination (atomic single-file
operations), but multi-file maintenance — :meth:`SweepResultStore.gc` and
:meth:`SweepResultStore.clear` — serializes on a store-level lock file
(:meth:`SweepResultStore.lock`), so two simultaneous ``repro-sweep gc``
invocations cannot race each other's ``stat()``/``unlink()`` and
double-report the reclaimed space.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Record key carrying the integrity checksum.  Dunder-named so it can never
#: collide with a real record field, and stripped before the record is
#: handed back to callers.
CHECKSUM_KEY = "__checksum__"

#: Directory (under the store root) where corrupt record files are moved.
QUARANTINE_DIR = ".quarantine"


def _safe_size(path: Path) -> int | None:
    try:
        return path.stat().st_size
    except OSError:
        return None


def record_checksum(record: dict[str, object]) -> str:
    """sha256 over the canonical JSON serialization of *record*.

    The canonical form (sorted keys, compact separators, ``default=str``)
    is chosen so the digest is identical whether computed over the
    original Python objects *before* :meth:`SweepResultStore.put` writes
    them or over the parsed JSON *after* :meth:`SweepResultStore.get`
    reads them back: tuples serialize as arrays either way, non-string
    dict keys coerce to strings either way, and anything non-JSON is
    stringified the same way on both sides.
    """
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class StoreLockTimeout(RuntimeError):
    """Raised when the store-level lock cannot be acquired in time."""


class SweepResultStore:
    """A directory of ``<key[:2]>/<key>.json`` flow-summary records.

    ``create=False`` opens an existing store without touching the
    filesystem and raises ``FileNotFoundError`` when the directory does not
    exist — read-only consumers (``repro-sweep stats``/``export``/``gc
    --dry-run``) use it so a mistyped ``--store`` path fails loudly instead
    of silently conjuring an empty store.
    """

    def __init__(self, root: str | os.PathLike[str], create: bool = True) -> None:
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"sweep result store does not exist: {self.root}")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"store key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_path(self) -> Path:
        """Sidecar directory holding record files that failed to decode."""
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, object] | None:
        """The stored record for *key*, or ``None`` on a miss or corrupt file.

        Corruption — unparseable JSON, a non-object top level, or a
        checksum mismatch against the embedded :data:`CHECKSUM_KEY` — is
        *quarantined*: the file is moved to ``.quarantine/`` (so the next
        read of the same key is a plain miss and a sweep re-runs the
        point) and ``None`` is returned instead of raising mid-sweep.
        Records written before checksum stamping carry no
        :data:`CHECKSUM_KEY` and are trusted as-is.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a flipped byte's invalid UTF-8 raises.
            self._quarantine(path)
            return None
        if not isinstance(record, dict):
            self._quarantine(path)
            return None
        stored_checksum = record.pop(CHECKSUM_KEY, None)
        if stored_checksum is not None and stored_checksum != record_checksum(record):
            self._quarantine(path)
            return None
        return record

    def _quarantine(self, path: Path) -> bool:
        """Move *path* into ``.quarantine/``; best-effort, never raises.

        The same key can be corrupted, quarantined, rewritten, and
        corrupted again, so the destination name gets a numeric suffix
        instead of overwriting earlier evidence.
        """
        try:
            self.quarantine_path.mkdir(parents=True, exist_ok=True)
            destination = self.quarantine_path / path.name
            suffix = 0
            while destination.exists():
                suffix += 1
                destination = self.quarantine_path / f"{path.stem}.{suffix}{path.suffix}"
            os.replace(path, destination)
            return True
        except OSError:
            return False

    def put(self, key: str, record: dict[str, object]) -> Path:
        """Atomically persist *record* under *key*, stamped with its checksum."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stamped = dict(record)
        stamped[CHECKSUM_KEY] = record_checksum(record)
        fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(stamped, handle, sort_keys=True, indent=1, default=str)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()) if self.root.is_dir() else []:
            # Dot-directories (.quarantine) hold non-record files.
            if not shard.is_dir() or shard.name.startswith("."):
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def quarantined(self) -> list[Path]:
        """The quarantined files, oldest name first (for stats/gc/tests)."""
        if not self.quarantine_path.is_dir():
            return []
        return sorted(p for p in self.quarantine_path.iterdir() if p.is_file())

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def records(self) -> Iterator[tuple[str, dict[str, object]]]:
        """Every readable ``(key, record)`` pair, in key order."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield key, record

    # ------------------------------------------------------------------
    # Store-level locking
    # ------------------------------------------------------------------
    @property
    def lock_path(self) -> Path:
        return self.root / ".lock"

    @contextlib.contextmanager
    def lock(self, timeout: float = 10.0, stale_after: float = 300.0):
        """Advisory store-wide lock on the ``.lock`` file.

        Record reads and writes never need this — they are individually
        atomic — but *multi-file* maintenance (:meth:`gc`, :meth:`clear`)
        does: two concurrent collectors racing ``stat()``/``unlink()`` on
        the same files would double-count their reclaim reports.

        On POSIX this is ``fcntl.flock`` on a persistent ``.lock`` file: the
        kernel releases the lock when the holder exits *for any reason*, so
        a crashed collector can never wedge the store and there is no
        staleness heuristic to race on (the file itself is left in place —
        unlinking a flock file reopens the classic stale-inode race).  Where
        ``fcntl`` is unavailable the fallback is a best-effort
        ``O_CREAT | O_EXCL`` token file whose *stale_after*-old leftovers
        are broken via atomic rename; its release-vs-steal window is narrow
        but nonzero, which is why the fallback is exactly that.  Raises
        :class:`StoreLockTimeout` after *timeout* seconds of contention.
        """
        path = self.lock_path
        deadline = time.monotonic() + timeout
        if fcntl is not None:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            try:
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            raise StoreLockTimeout(
                                f"store {self.root} is locked (flock on {path} "
                                f"held by another process) after {timeout:g}s"
                            )
                        time.sleep(0.05)
                # For operators peeking at a busy store: who holds it.
                os.ftruncate(fd, 0)
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                yield
            finally:
                os.close(fd)  # closing the descriptor drops the flock
            return

        # Non-POSIX fallback: exclusive-create token file.
        token = f"{os.getpid()}-{os.urandom(8).hex()}"
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    # Holder likely just released it — but bound the retry so
                    # a persistently failing stat() cannot spin forever.
                    if time.monotonic() >= deadline:
                        raise StoreLockTimeout(
                            f"store {self.root} is locked and its lock file "
                            f"{path} cannot be inspected"
                        )
                    continue
                if age > stale_after:
                    # Steal the stale lock atomically: the rename succeeds
                    # for exactly one waiter, and the O_EXCL create above
                    # then decides the new owner.
                    grave = path.with_name(f".lock-stale-{token}")
                    with contextlib.suppress(OSError):
                        os.rename(path, grave)
                        os.unlink(grave)
                    continue
                if time.monotonic() >= deadline:
                    raise StoreLockTimeout(
                        f"store {self.root} is locked (lock file {path} held "
                        f"for {age:.1f}s); remove it if the holder crashed"
                    )
                time.sleep(0.05)
                continue
            try:
                os.write(fd, token.encode("ascii"))
            finally:
                os.close(fd)
            break
        try:
            yield
        finally:
            with contextlib.suppress(OSError):
                if path.read_text(encoding="ascii") == token:
                    path.unlink()

    # ------------------------------------------------------------------
    # Observability and garbage collection
    # ------------------------------------------------------------------
    def stats(self, current_fingerprint: str | None = None) -> dict[str, object]:
        """Record counts and on-disk footprint (bytes) of the store.

        Records keyed by retired code fingerprints are not reachable through
        current :meth:`SweepPoint.key` values but still live here; they are
        counted separately (``retired_records`` / ``retired_bytes``) against
        *current_fingerprint* (defaulting to this process's
        :func:`repro.fingerprint.code_fingerprint`) so :meth:`gc` has an
        honest before/after.  Records predating fingerprint stamping count as
        retired.  The legacy ``records`` / ``bytes`` totals cover every
        readable record, current or not.

        Walking the store decodes every record through :meth:`get`, so any
        corrupt file encountered is quarantined on the spot; the
        ``.quarantine/`` sidecar is tallied afterwards
        (``quarantined_records`` / ``quarantined_bytes``) so those files —
        including ones quarantined by this very call — show up in the
        report.  Flow records are additionally bucketed by the supervision
        status vocabulary (``ok_records`` / ``error_records`` /
        ``poisoned_records``; see ``docs/robustness.md``) so
        ``repro-sweep stats`` can report fault outcomes, and by the compute
        backend that produced them (``kernels`` -- a ``{name: count}`` map
        over records stamped with a ``"kernel"`` key; cached summaries keep
        the stamp of whichever backend originally computed them).
        """
        if current_fingerprint is None:
            from repro.fingerprint import code_fingerprint

            current_fingerprint = code_fingerprint()
        totals = {
            "records": 0,
            "bytes": 0,
            "current_records": 0,
            "current_bytes": 0,
            "retired_records": 0,
            "retired_bytes": 0,
            "placement_records": 0,
            "flow_records": 0,
            "ok_records": 0,
            "error_records": 0,
            "poisoned_records": 0,
        }
        kernels: dict[str, int] = {}
        fingerprints: set[str] = set()
        for key in self.keys():
            record = self.get(key)
            if record is None:
                # Vanished under our feet, or corrupt (now quarantined —
                # tallied below); either way no longer a live record.
                continue
            totals["records"] += 1
            size = 0
            try:
                size = self.path_for(key).stat().st_size
            except OSError:
                pass
            totals["bytes"] += size
            fingerprint = record.get("fingerprint")
            if isinstance(fingerprint, str):
                fingerprints.add(fingerprint)
            if record.get("kind") == "placement":
                totals["placement_records"] += 1
            else:
                totals["flow_records"] += 1
                status = record.get("status")
                if isinstance(status, str) and f"{status}_records" in totals:
                    totals[f"{status}_records"] += 1
                kernel = record.get("kernel")
                if isinstance(kernel, str):
                    kernels[kernel] = kernels.get(kernel, 0) + 1
            if fingerprint == current_fingerprint:
                totals["current_records"] += 1
                totals["current_bytes"] += size
            else:
                totals["retired_records"] += 1
                totals["retired_bytes"] += size
        quarantined = self.quarantined()
        totals["quarantined_records"] = len(quarantined)
        totals["quarantined_bytes"] = sum(
            size
            for path in quarantined
            if (size := _safe_size(path)) is not None
        )
        totals["kernels"] = kernels
        totals["fingerprints"] = len(fingerprints)
        totals["current_fingerprint"] = current_fingerprint
        return totals

    def gc(
        self,
        current_fingerprint: str | None = None,
        keep_latest: int = 0,
        dry_run: bool = False,
        max_bytes: int | None = None,
    ) -> dict[str, object]:
        """Delete records whose code fingerprint is not *current*.

        Retired records (fingerprint differs from *current_fingerprint*,
        which defaults to this process's
        :func:`repro.fingerprint.code_fingerprint`) are unreachable through
        any current cache key, so deleting them only reclaims disk.
        ``keep_latest=N`` spares the N most recently written retired
        *generations* (records grouped by their stored fingerprint, newest
        file mtime first) — a safety net for e.g. comparing results across a
        code change.  Records with no fingerprint stamp form their own
        "unknown" generation; **unreadable/corrupt** files are quarantined
        by the walk itself (see :meth:`get`) and the ``.quarantine/``
        sidecar is then reaped in full (``quarantine_reaped`` in the
        report) — quarantined files are never spared.  ``dry_run`` reports
        without deleting.

        ``max_bytes=N`` additionally bounds the store's footprint: after the
        fingerprint pass, surviving records are evicted oldest-mtime-first
        until at most N bytes remain (this is the size bound the artifact
        store enforces after every checkpointed flow).  Size eviction ignores
        fingerprints — a current-generation record can be evicted once the
        store outgrows the bound, which only ever costs a cache miss.

        Concurrent ``gc`` invocations serialize on :meth:`lock` (so their
        reclaim reports never double-count a file), and a record deleted
        under our feet by anything else is skipped, not an error.
        """
        if current_fingerprint is None:
            from repro.fingerprint import code_fingerprint

            current_fingerprint = code_fingerprint()
        with self.lock():
            outcome = self._gc_locked(current_fingerprint, keep_latest, dry_run)
            if max_bytes is not None:
                evicted, evicted_bytes = self._evict_to_size_locked(max_bytes, dry_run)
                outcome["removed"] = int(outcome["removed"]) + evicted
                outcome["bytes_freed"] = int(outcome["bytes_freed"]) + evicted_bytes
                outcome["size_evicted"] = evicted
            return outcome

    def _evict_to_size_locked(self, max_bytes: int, dry_run: bool) -> tuple[int, int]:
        """Evict oldest-mtime records until at most *max_bytes* remain.

        Returns ``(records_evicted, bytes_evicted)``.  In a dry run the
        would-be evictions are counted against the current sizes without
        deleting anything.
        """
        entries: list[tuple[float, int, str]] = []
        total = 0
        for key in self.keys():
            try:
                stat = self.path_for(key).stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, key))
            total += stat.st_size
        entries.sort()
        evicted = 0
        evicted_bytes = 0
        for mtime, size, key in entries:
            if total <= max_bytes:
                break
            try:
                if not dry_run:
                    self.path_for(key).unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            evicted_bytes += size
        return evicted, evicted_bytes

    def _gc_locked(
        self,
        current_fingerprint: str,
        keep_latest: int,
        dry_run: bool,
    ) -> dict[str, object]:
        # Group retired records into generations by stored fingerprint.
        # Keys are enumerated directly (not via records()) so corrupt files
        # get quarantined by the walk and reaped below.
        generations: dict[str, list[str]] = {}
        newest_mtime: dict[str, float] = {}
        kept_current = 0
        for key in self.keys():
            record = self.get(key)
            if record is None:
                # Corrupt (just quarantined) or vanished; the quarantine
                # reap below accounts for it.
                continue
            fingerprint = record.get("fingerprint")
            if fingerprint == current_fingerprint:
                kept_current += 1
                continue
            generation = fingerprint if isinstance(fingerprint, str) else "unknown"
            generations.setdefault(generation, []).append(key)
            try:
                mtime = self.path_for(key).stat().st_mtime
            except OSError:
                mtime = 0.0
            newest_mtime[generation] = max(newest_mtime.get(generation, 0.0), mtime)

        spared = set(
            sorted(generations, key=lambda g: newest_mtime[g], reverse=True)[
                : max(0, keep_latest)
            ]
        )
        removed = 0
        bytes_freed = 0
        kept_retired = 0
        collectable: list[str] = []
        for generation, keys in generations.items():
            if generation in spared:
                kept_retired += len(keys)
                continue
            collectable.extend(keys)
        for key in collectable:
            path = self.path_for(key)
            try:
                size = path.stat().st_size
                if not dry_run:
                    path.unlink()
            except OSError:
                continue
            removed += 1
            bytes_freed += size
        # Reap the quarantine: corrupt files are permanent cache misses, so
        # a gc pass is where their disk comes back.
        quarantine_reaped = 0
        for path in self.quarantined():
            size = _safe_size(path)
            if size is None:
                continue
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            quarantine_reaped += 1
            removed += 1
            bytes_freed += size
        return {
            "removed": removed,
            "bytes_freed": bytes_freed,
            "kept_current": kept_current,
            "kept_retired": kept_retired,
            "quarantine_reaped": quarantine_reaped,
            "generations_removed": len(generations) - len(spared),
            "generations_kept": len(spared),
            "dry_run": dry_run,
        }

    def clear(self) -> int:
        """Delete every record (and quarantined file); returns the count.

        Serializes on :meth:`lock` like :meth:`gc` (both walk and delete
        multiple files).
        """
        removed = 0
        with self.lock():
            for key in list(self.keys()):
                try:
                    self.path_for(key).unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.quarantined():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
