"""Batch sweep engine: grids of (circuit × architecture × options) flows.

The subsystem has four pieces:

* :mod:`repro.sweep.spec` -- :class:`SweepPoint` / :class:`SweepSpec`, the
  declarative description of a sweep grid with stable content hashing;
* :mod:`repro.sweep.store` -- :class:`SweepResultStore`, a content-addressed
  on-disk cache of flow summaries;
* :mod:`repro.sweep.runner` -- :class:`SweepRunner`, serial or
  process-parallel execution with cache hit/miss accounting;
* :mod:`repro.sweep.report` -- CSV / JSON / text reporters.
"""

from repro.sweep.report import format_report, write_csv, write_json
from repro.sweep.runner import SweepOutcome, SweepReport, SweepRunner
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import SweepResultStore

__all__ = [
    "SweepOutcome",
    "SweepPoint",
    "SweepReport",
    "SweepResultStore",
    "SweepRunner",
    "SweepSpec",
    "format_report",
    "write_csv",
    "write_json",
]
