"""Batch sweep engine: grids of (circuit × architecture × options) flows.

The subsystem has six pieces:

* :mod:`repro.sweep.spec` -- :class:`SweepPoint` / :class:`SweepSpec`, the
  declarative description of a sweep grid with stable content hashing (both
  the flow-summary key and the placement key embed the code fingerprint, so
  behaviour changes retire stale records automatically), plus the record
  status vocabulary (``ok`` / ``error`` / ``timeout`` / ``poisoned`` /
  ``skipped``);
* :mod:`repro.sweep.store` -- :class:`SweepResultStore`, a content-addressed
  on-disk cache of flow summaries and placements with checksum-verified
  reads (corrupt files quarantine to ``.quarantine/`` instead of raising)
  and fingerprint-aware :meth:`~repro.sweep.store.SweepResultStore.stats`
  and :meth:`~repro.sweep.store.SweepResultStore.gc`;
* :mod:`repro.sweep.runner` -- :class:`SweepRunner` over the pluggable
  :class:`Executor` protocol (``serial`` / ``thread`` / ``process`` backends
  in-tree, third-party ones via :func:`register_executor`), with cache
  hit/miss accounting, incremental re-route from cached placements, and a
  supervision layer (:class:`RetryPolicy` retries, per-point timeouts,
  worker-crash recovery, poison quarantine, executor fallback);
* :mod:`repro.sweep.chaos` -- the deterministic fault-injection harness
  (:class:`FaultPlan` / :class:`ChaosExecutor` / :class:`ChaosStore` /
  :func:`run_campaign`) that proves the supervision layer's recovery paths;
* :mod:`repro.sweep.report` -- CSV / JSON / text reporters;
* :mod:`repro.cli` -- the ``repro-sweep`` command-line interface over all of
  the above (``run`` / ``stats`` / ``gc`` / ``export`` / ``clear`` /
  ``chaos``).

See ``docs/sweep.md`` and ``docs/robustness.md`` for the walk-throughs.
"""

from repro.sweep.chaos import ChaosExecutor, ChaosStore, FaultPlan, run_campaign
from repro.sweep.report import format_report, format_stats, write_csv, write_json
from repro.sweep.runner import (
    Executor,
    ProcessExecutor,
    RetryPolicy,
    RunnerConfig,
    SerialExecutor,
    SweepOutcome,
    SweepReport,
    SweepRunner,
    ThreadExecutor,
    available_executors,
    create_executor,
    execute_point,
    register_executor,
    report_from_records,
)
from repro.sweep.spec import (
    RECORD_STATUSES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    SweepPoint,
    SweepSpec,
)
from repro.sweep.store import StoreLockTimeout, SweepResultStore, record_checksum

__all__ = [
    "ChaosExecutor",
    "ChaosStore",
    "Executor",
    "FaultPlan",
    "ProcessExecutor",
    "RECORD_STATUSES",
    "RetryPolicy",
    "RunnerConfig",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_POISONED",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "SerialExecutor",
    "StoreLockTimeout",
    "SweepOutcome",
    "SweepPoint",
    "SweepReport",
    "SweepResultStore",
    "SweepRunner",
    "SweepSpec",
    "ThreadExecutor",
    "available_executors",
    "create_executor",
    "execute_point",
    "format_report",
    "format_stats",
    "record_checksum",
    "register_executor",
    "report_from_records",
    "run_campaign",
    "write_csv",
    "write_json",
]
