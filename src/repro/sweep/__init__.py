"""Batch sweep engine: grids of (circuit × architecture × options) flows.

The subsystem has five pieces:

* :mod:`repro.sweep.spec` -- :class:`SweepPoint` / :class:`SweepSpec`, the
  declarative description of a sweep grid with stable content hashing (both
  the flow-summary key and the placement key embed the code fingerprint, so
  behaviour changes retire stale records automatically);
* :mod:`repro.sweep.store` -- :class:`SweepResultStore`, a content-addressed
  on-disk cache of flow summaries and placements, with fingerprint-aware
  :meth:`~repro.sweep.store.SweepResultStore.stats` and
  :meth:`~repro.sweep.store.SweepResultStore.gc`;
* :mod:`repro.sweep.runner` -- :class:`SweepRunner` over the pluggable
  :class:`Executor` protocol (``serial`` / ``thread`` / ``process`` backends
  in-tree, third-party ones via :func:`register_executor`), with cache
  hit/miss accounting and incremental re-route from cached placements;
* :mod:`repro.sweep.report` -- CSV / JSON / text reporters;
* :mod:`repro.cli` -- the ``repro-sweep`` command-line interface over all of
  the above (``run`` / ``stats`` / ``gc`` / ``export`` / ``clear``).

See ``docs/sweep.md`` for the walk-through.
"""

from repro.sweep.report import format_report, format_stats, write_csv, write_json
from repro.sweep.runner import (
    Executor,
    ProcessExecutor,
    RunnerConfig,
    SerialExecutor,
    SweepOutcome,
    SweepReport,
    SweepRunner,
    ThreadExecutor,
    available_executors,
    execute_point,
    register_executor,
    report_from_records,
)
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import StoreLockTimeout, SweepResultStore

__all__ = [
    "Executor",
    "ProcessExecutor",
    "RunnerConfig",
    "SerialExecutor",
    "StoreLockTimeout",
    "SweepOutcome",
    "SweepPoint",
    "SweepReport",
    "SweepResultStore",
    "SweepRunner",
    "SweepSpec",
    "ThreadExecutor",
    "available_executors",
    "execute_point",
    "format_report",
    "format_stats",
    "register_executor",
    "report_from_records",
    "write_csv",
    "write_json",
]
