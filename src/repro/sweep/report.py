"""CSV / JSON / plain-text rendering of :class:`~repro.sweep.runner.SweepReport`."""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from repro.sweep.runner import SweepReport


def _all_columns(rows: list[dict[str, object]]) -> list[str]:
    """Union of row keys, in first-seen order, so sparse rows still line up."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def format_stats(report: SweepReport) -> str:
    """The one-line ``[key=value, ...]`` stats footer of a report."""
    return "[" + ", ".join(f"{key}={value}" for key, value in report.stats().items()) + "]"


def format_report(report: SweepReport) -> str:
    """An aligned text table of every outcome plus a stats footer."""
    from repro.analysis.tables import format_table

    rows = report.rows()
    table = format_table(rows, columns=_all_columns(rows)) if rows else "(no rows)"
    return f"{table}\n{format_stats(report)}"


def write_csv(report: SweepReport, path: str | os.PathLike[str]) -> Path:
    """Write one CSV row per sweep point; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = report.rows()
    columns = _all_columns(rows)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(report: SweepReport, path: str | os.PathLike[str]) -> Path:
    """Write the report (stats + rows) as one JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"stats": report.stats(), "rows": report.rows()}
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True, default=str)
    return path
