"""Declarative sweep grids.

A sweep is a cartesian product of circuit names (from
:func:`repro.circuits.registry.circuit_registry`), architecture instances and
flow-option sets.  Each cell of the grid is a :class:`SweepPoint`; its
:meth:`SweepPoint.key` is a sha256 content hash of the point's canonical
serialization, which is what the on-disk result store is addressed by.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams, stable_digest
from repro.fingerprint import code_fingerprint

#: Version of the stored *record layout* only.  Bump it when the record
#: format itself changes (renamed fields, new envelope).  Behaviour changes in
#: mappers / circuit factories / flow steps need no manual action: the cache
#: key embeds :func:`repro.fingerprint.code_fingerprint`, so editing those
#: sources automatically retires every stale record.  The robustness fields
#: added for the supervised runner (``attempts``, ``duration_s``,
#: ``transient``) are additive and optional, so they did not bump the
#: version: pre-supervision records stay readable and simply report an empty
#: attempt history.
SWEEP_SCHEMA_VERSION = 1

#: The record status vocabulary.  ``ok`` / ``error`` come straight from
#: :func:`repro.sweep.runner.execute_point`; the remaining three are assigned
#: by the runner's supervision layer (see ``docs/robustness.md``):
#:
#: * ``ok``       -- the flow completed; ``summary`` is populated.
#: * ``error``    -- the flow raised; ``error`` carries class + message.
#:   Deterministic flow errors are cacheable, environmental ones
#:   (``transient: true``) are retried per policy and never cached.
#: * ``timeout``  -- the point exceeded the per-point wall-clock budget;
#:   never cached, retried per policy.
#: * ``poisoned`` -- the point killed its worker more than the configured
#:   number of times and was quarantined; cached *with* its attempt history
#:   so ``repro-sweep stats`` can report it (``gc``/``clear`` re-arms it).
#: * ``skipped``  -- the point was never run because ``fail_fast`` stopped
#:   the sweep first; never cached.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_POISONED = "poisoned"
STATUS_SKIPPED = "skipped"
RECORD_STATUSES = (
    STATUS_OK,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    STATUS_POISONED,
    STATUS_SKIPPED,
)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid: run *circuit* on *architecture* with *options*."""

    circuit: str
    architecture: ArchitectureParams
    options: FlowOptions

    def to_dict(self) -> dict[str, object]:
        return {
            "version": SWEEP_SCHEMA_VERSION,
            "circuit": self.circuit,
            "architecture": self.architecture.to_dict(),
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepPoint":
        return cls(
            circuit=str(data["circuit"]),
            architecture=ArchitectureParams.from_dict(dict(data["architecture"])),
            options=FlowOptions.from_dict(dict(data["options"])),
        )

    def key(self) -> str:
        """The content-address of this point in the result store.

        Besides the point description the key hashes a fingerprint of the
        code that executes the point, so results are addressed by the
        semantics that produced them: a behaviour change in the CAD or
        circuit packages misses every pre-change record.
        """
        payload = self.to_dict()
        payload["code_fingerprint"] = code_fingerprint()
        return stable_digest(payload)

    def placement_key(self) -> str:
        """The content-address of this point's *placement* in the result store.

        Placement depends on strictly less than the full point: the circuit
        (and the code that maps it, folded in via the fingerprint), the fabric
        *geometry* -- grid size, PLB parameters, IO pads per side -- the
        annealing seed/effort, the mapping mode, and the **timing-driven
        knobs**: a timing-driven flow polishes the baseline placement under
        the blended objective, so ``timing_driven`` / ``timing_tradeoff`` /
        the timing model produce a genuinely different placement and must
        split the cache slot (a cached timing placement *is* the polished
        one, which is why the flow's cache-hit path may skip the polish).
        Routing-side knobs (channel width, connection/switch-box topology,
        router iterations, bitstream generation) are deliberately
        **excluded**: two points differing only in those share one placement
        record, which is what lets the runner re-route an options-only
        change without re-placing (incremental re-route).
        """
        arch = self.architecture
        payload = {
            "kind": "placement",
            "circuit": self.circuit,
            "code_fingerprint": code_fingerprint(),
            "fabric": {
                "width": arch.width,
                "height": arch.height,
                "plb": arch.plb.to_dict(),
                "io_pads_per_side": arch.routing.io_pads_per_side,
            },
            "seed": self.options.placement_seed,
            "effort": self.options.placement_effort,
            "use_template_mapping": self.options.use_template_mapping,
            "timing_driven": self.options.timing_driven,
            # The blend weight and delay model only shape the polish pass,
            # so they are irrelevant (normalised out) on baseline points.
            "timing_tradeoff": (
                self.options.timing_tradeoff if self.options.timing_driven else None
            ),
            "timing_model": (
                self.options.timing_model.to_dict()
                if self.options.timing_driven
                else None
            ),
        }
        return stable_digest(payload)

    def routing_base_key(self) -> str:
        """The content-address of this point's *routing-tree* cache slot.

        The key hashes the full point **except the fabric geometry being
        swept**: channel width and grid size (width/height).  Every step of
        a channel-width *or* grid-size ladder (same circuit, same placement
        inputs, same routing topology otherwise) then shares one slot, which
        is what lets the runner seed PathFinder with a neighbouring
        fabric's legal trees (the warm-start cache).  Trees are stored as
        node *names*, and a smaller grid's wire/pin names all exist on a
        larger grid, so cross-grid seeds resolve meaningfully; names that do
        not exist are dropped during seed resolution.  The stored record
        carries the exact geometry it was routed at; a point whose own
        geometry matches would have hit the flow-summary cache instead.
        """
        payload = self.to_dict()
        architecture = dict(payload["architecture"])
        architecture.pop("width", None)
        architecture.pop("height", None)
        routing = dict(architecture["routing"])
        routing.pop("channel_width", None)
        architecture["routing"] = routing
        payload["architecture"] = architecture
        return stable_digest(
            {
                "kind": "routing_trees",
                "point": payload,
                "code_fingerprint": code_fingerprint(),
            }
        )

    def label(self) -> str:
        """A short human-readable identifier for tables and logs."""
        arch = self.architecture
        return f"{self.circuit}@{arch.width}x{arch.height}/cw{arch.routing.channel_width}"


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep grid, expanded lazily into :class:`SweepPoint` cells."""

    circuits: tuple[str, ...]
    architectures: tuple[ArchitectureParams, ...]
    options: tuple[FlowOptions, ...]

    @classmethod
    def build(
        cls,
        circuits: Iterable[str],
        architectures: Iterable[ArchitectureParams] | ArchitectureParams,
        options: Iterable[FlowOptions] | FlowOptions | None = None,
    ) -> "SweepSpec":
        """Normalise loose arguments (single values allowed) into a spec."""
        if isinstance(architectures, ArchitectureParams):
            architectures = (architectures,)
        if options is None:
            options = (FlowOptions(),)
        elif isinstance(options, FlowOptions):
            options = (options,)
        return cls(
            circuits=tuple(circuits),
            architectures=tuple(architectures),
            options=tuple(options),
        )

    @classmethod
    def full_registry(
        cls,
        architectures: Iterable[ArchitectureParams] | ArchitectureParams | None = None,
        options: Iterable[FlowOptions] | FlowOptions | None = None,
    ) -> "SweepSpec":
        """Every registered benchmark circuit, by default on the reference fabric."""
        from repro.circuits.registry import circuit_registry

        if architectures is None:
            architectures = (ArchitectureParams(),)
        return cls.build(sorted(circuit_registry()), architectures, options)

    def points(self) -> list[SweepPoint]:
        """The grid cells in deterministic (circuit-major) order."""
        return [
            SweepPoint(circuit=circuit, architecture=arch, options=opts)
            for circuit, arch, opts in itertools.product(
                self.circuits, self.architectures, self.options
            )
        ]

    def __len__(self) -> int:
        return len(self.circuits) * len(self.architectures) * len(self.options)


def as_points(
    spec_or_points: SweepSpec | Sequence[SweepPoint],
) -> list[SweepPoint]:
    """Accept either a spec or an explicit point list."""
    if isinstance(spec_or_points, SweepSpec):
        return spec_or_points.points()
    return list(spec_or_points)
