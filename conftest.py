"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(the execution environment is offline, so editable installs may be
unavailable; ``python setup.py develop`` or this path shim both work).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
